//! The user-facing verifier API.
//!
//! [`Verifier`] ties together the product construction, the static
//! analysis, the Karp–Miller search and the repeated-reachability
//! analysis.  Every optimisation of Section 3 can be toggled through
//! [`VerifierOptions`] so the ablation experiments of Table 3 can be
//! reproduced:
//!
//! * `state_pruning` (SP) — use the ≼ subsumption order instead of the
//!   classic ≤ order,
//! * `static_analysis` (SA) — drop non-violating constraints,
//! * `data_structure_support` (DSS) — filter coverage candidates through
//!   the inverted-list index,
//! * `handle_artifact_relations` — `false` gives the `VERIFAS-NoSet`
//!   configuration,
//! * `check_repeated` — run the repeated-reachability module (needed for
//!   full LTL-FO; without it only finite violations are detected).

use crate::coverage::CoverageKind;
use crate::error::VerifasError;
use crate::observer::SearchControl;
use crate::product::ProductSystem;
use crate::repeated::{find_infinite_violation_with, CycleStats};
use crate::search::{KarpMillerSearch, SearchLimits, SearchOutcome, SearchStats, WorkerStats};
use crate::static_analysis::ConstraintGraph;
use verifas_ltl::LtlFoProperty;
use verifas_model::{HasSpec, ModelError, ServiceRef};

/// Options controlling the verifier (all optimisations enabled by
/// default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifierOptions {
    /// SP — the ≼-based aggressive pruning of Section 3.5.
    pub state_pruning: bool,
    /// SA — the static analysis of Section 3.7.
    pub static_analysis: bool,
    /// DSS — the data-structure support of Section 3.6.
    pub data_structure_support: bool,
    /// Handle updatable artifact relations (`false` = `VERIFAS-NoSet`).
    pub handle_artifact_relations: bool,
    /// Run the repeated-reachability analysis (Section 3.8).
    pub check_repeated: bool,
    /// Worker threads of a single verification: they expand the frontier
    /// of each search phase and build the edges of the
    /// repeated-reachability cycle detection (1 = sequential, 0 = one per
    /// available core).  The verdict and the witness are deterministic
    /// regardless of this setting; see the "Parallel execution" notes on
    /// [`crate::search`] and the cycle-detection notes on
    /// [`crate::repeated`].
    pub search_threads: usize,
    /// Resource limits of each search phase.
    pub limits: SearchLimits,
    /// Run phase 1 on the retained pre-arena linear-scan state layout
    /// instead of the arena-backed one (an oracle arm for differential
    /// testing; verdicts, witnesses and stats must be bit-identical).
    pub reference_layout: bool,
    /// Run phase 2 through [`crate::repeated::find_infinite_violation_reference`]
    /// (the retained O(active²) oracle) instead of the indexed
    /// implementation.  The reference arm produces no [`CycleStats`], so
    /// differential comparisons against it cover verdict + witness +
    /// phase-1 stats only.
    pub reference_repeated: bool,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        VerifierOptions {
            state_pruning: true,
            static_analysis: true,
            data_structure_support: true,
            handle_artifact_relations: true,
            check_repeated: true,
            search_threads: 1,
            limits: SearchLimits::default(),
            reference_layout: false,
            reference_repeated: false,
        }
    }
}

impl VerifierOptions {
    /// The `VERIFAS-NoSet` configuration of the paper: artifact relations
    /// are ignored.
    pub fn no_set() -> Self {
        VerifierOptions {
            handle_artifact_relations: false,
            ..VerifierOptions::default()
        }
    }

    /// Disable one named optimisation (used by the Table 3 ablation):
    /// `"SP"`, `"SA"` or `"DSS"`.
    ///
    /// # Panics
    /// On an unknown name, with a message listing the valid ones — a typo
    /// must not silently run the ablation with every optimisation still
    /// enabled.  Use [`VerifierOptions::try_without`] to handle the error
    /// instead.
    pub fn without(self, optimization: &str) -> Self {
        match self.try_without(optimization) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Disable one named optimisation (`"SP"`, `"SA"` or `"DSS"`),
    /// reporting unknown names as
    /// [`VerifasError::UnknownOptimization`] (whose message lists
    /// [`crate::error::VALID_OPTIMIZATIONS`]).
    pub fn try_without(self, optimization: &str) -> Result<Self, VerifasError> {
        let mut out = self;
        match optimization {
            "SP" => out.state_pruning = false,
            "SA" => out.static_analysis = false,
            "DSS" => out.data_structure_support = false,
            other => {
                return Err(VerifasError::UnknownOptimization {
                    given: other.to_owned(),
                })
            }
        }
        Ok(out)
    }

    fn coverage(&self) -> CoverageKind {
        if self.state_pruning {
            CoverageKind::Subsumption
        } else {
            CoverageKind::Standard
        }
    }

    fn repeated_coverage(&self) -> CoverageKind {
        if self.state_pruning {
            CoverageKind::StrictSubsumption
        } else {
            CoverageKind::Standard
        }
    }
}

/// The verdict of a verification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationOutcome {
    /// Every local run of the task satisfies the property.
    Satisfied,
    /// Some local run violates the property (see the counterexample).
    Violated,
    /// A resource limit was reached before an answer could be established.
    Inconclusive,
}

/// A violating symbolic local run.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The sequence of observable services of the violating run (for an
    /// infinite violation, the prefix leading to the repeated state).
    pub services: Vec<ServiceRef>,
    /// The same sequence rendered with task/service names.
    pub description: String,
    /// `true` for a finite violating run (the task closes), `false` for an
    /// infinite one.
    pub finite: bool,
}

/// Result of a verification run.
#[derive(Debug, Clone)]
pub struct VerificationResult {
    /// The verdict.
    pub outcome: VerificationOutcome,
    /// A counterexample when the property is violated.
    pub counterexample: Option<Counterexample>,
    /// Statistics of the main search phase.
    pub stats: SearchStats,
    /// Statistics of the repeated-reachability phase (when it ran).
    pub repeated_stats: Option<SearchStats>,
    /// Statistics of the repeated-reachability cycle-detection pass (when
    /// it ran; see [`CycleStats`]).
    pub repeated_cycle: Option<CycleStats>,
    /// Per-worker statistics across both phases (empty for runs made by
    /// engines predating the parallel search).
    pub worker_stats: Vec<WorkerStats>,
    /// Set when a worker thread of either phase panicked: the run
    /// degraded to a limit-stopped one (any violation already in hand is
    /// still sound) and the owning engine request surfaces the message
    /// as a typed [`VerifasError::Internal`] instead of a report.
    pub failure: Option<String>,
}

impl VerificationResult {
    /// Total elapsed time across phases, in milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        self.stats.elapsed_ms + self.repeated_stats.map_or(0, |s| s.elapsed_ms)
    }
}

/// The VERIFAS verifier for one (specification, property) pair.
///
/// Deprecated: this one-shot front-end rebuilds the spec-side
/// preprocessing on every construction.  Use `verifas::Engine`, which
/// loads a specification once, serves many properties, shares the
/// preprocessing across them and returns serializable
/// [`crate::report::VerificationReport`]s.
#[deprecated(
    since = "0.2.0",
    note = "use verifas::Engine (Engine::load(spec).check(&property)); \
            Verifier will be removed after one release"
)]
pub struct Verifier {
    product: ProductSystem,
    options: VerifierOptions,
}

#[allow(deprecated)]
impl Verifier {
    /// Build a verifier; the property is validated against the
    /// specification.
    pub fn new(
        spec: &HasSpec,
        property: &LtlFoProperty,
        options: VerifierOptions,
    ) -> Result<Self, ModelError> {
        spec.validate()?;
        let mut product = ProductSystem::new(spec, property, options.handle_artifact_relations)?;
        if options.static_analysis {
            let graph =
                ConstraintGraph::build(spec, property.task, property, &product.task.universe);
            let removed = graph.non_violating_edges(&product.task.universe);
            product.set_static_removed(removed);
        }
        Ok(Verifier { product, options })
    }

    /// The product system (exposed for inspection and benchmarking).
    pub fn product(&self) -> &ProductSystem {
        &self.product
    }

    /// Run the verification.
    pub fn verify(&self) -> VerificationResult {
        run_verification(&self.product, self.options, &mut SearchControl::default())
    }
}

/// Run the two verification phases over a prepared product system under a
/// [`SearchControl`] (observer + cancellation).  This is the shared
/// implementation behind [`Verifier::verify`] and `verifas::Engine`.
pub fn run_verification(
    product: &ProductSystem,
    options: VerifierOptions,
    control: &mut SearchControl<'_>,
) -> VerificationResult {
    // Phase 1: reachability search (finds finite violations).
    control.phase = Some(crate::observer::Phase::Reachability);
    let mut search = KarpMillerSearch::new(
        product,
        options.coverage(),
        options.data_structure_support,
        options.limits,
    );
    search.threads = options.search_threads;
    search.reference_layout = options.reference_layout;
    let outcome = search.run_with(control);
    let stats = search.stats;
    let worker_stats = std::mem::take(&mut search.worker_stats);
    let failure = std::mem::take(&mut search.failure);
    match outcome {
        SearchOutcome::FiniteViolation(node) => {
            let services: Vec<ServiceRef> =
                search.trace(node).into_iter().map(|(s, _)| s).collect();
            let description = describe(product, &services);
            VerificationResult {
                outcome: VerificationOutcome::Violated,
                counterexample: Some(Counterexample {
                    services,
                    description,
                    finite: true,
                }),
                stats,
                repeated_stats: None,
                repeated_cycle: None,
                worker_stats,
                failure,
            }
        }
        SearchOutcome::LimitReached => VerificationResult {
            outcome: VerificationOutcome::Inconclusive,
            counterexample: None,
            stats,
            repeated_stats: None,
            repeated_cycle: None,
            worker_stats,
            failure,
        },
        SearchOutcome::Exhausted => {
            if !options.check_repeated {
                return VerificationResult {
                    outcome: VerificationOutcome::Satisfied,
                    counterexample: None,
                    stats,
                    repeated_stats: None,
                    repeated_cycle: None,
                    worker_stats,
                    failure,
                };
            }
            // Phase 2: repeated reachability for infinite violations.
            let repeated = if options.reference_repeated {
                crate::repeated::find_infinite_violation_reference(
                    product,
                    options.repeated_coverage(),
                    options.data_structure_support,
                    options.limits,
                )
            } else {
                find_infinite_violation_with(
                    product,
                    options.repeated_coverage(),
                    options.data_structure_support,
                    options.limits,
                    options.search_threads,
                    control,
                )
            };
            let repeated_stats = Some(repeated.stats);
            let repeated_cycle = repeated.cycle;
            let failure = failure.or(repeated.failure);
            // Merge the repeated phase's pools (auxiliary search + edge
            // construction) into the per-worker totals.
            let mut worker_stats = worker_stats;
            crate::search::merge_worker_stats(&mut worker_stats, &repeated.worker_stats);
            if let Some(finite) = repeated.finite_violation {
                let description = describe(product, &finite);
                return VerificationResult {
                    outcome: VerificationOutcome::Violated,
                    counterexample: Some(Counterexample {
                        services: finite,
                        description,
                        finite: true,
                    }),
                    stats,
                    repeated_stats,
                    repeated_cycle,
                    worker_stats,
                    failure,
                };
            }
            match repeated.violation {
                Some(v) => {
                    let description = format!(
                        "{} (infinite run: {})",
                        describe(product, &v.prefix),
                        v.reason
                    );
                    VerificationResult {
                        outcome: VerificationOutcome::Violated,
                        counterexample: Some(Counterexample {
                            services: v.prefix,
                            description,
                            finite: false,
                        }),
                        stats,
                        repeated_stats,
                        repeated_cycle,
                        worker_stats,
                        failure,
                    }
                }
                None if repeated.limit_reached => VerificationResult {
                    outcome: VerificationOutcome::Inconclusive,
                    counterexample: None,
                    stats,
                    repeated_stats,
                    repeated_cycle,
                    worker_stats,
                    failure,
                },
                None => VerificationResult {
                    outcome: VerificationOutcome::Satisfied,
                    counterexample: None,
                    stats,
                    repeated_stats,
                    repeated_cycle,
                    worker_stats,
                    failure,
                },
            }
        }
    }
}

fn describe(product: &ProductSystem, services: &[ServiceRef]) -> String {
    services
        .iter()
        .map(|s| product.task.spec.service_name(*s))
        .collect::<Vec<_>>()
        .join(" → ")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
    use verifas_model::schema::attr::data;
    use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, TaskId, Term};

    /// Root task with a child whose closing requires approval; the root
    /// then archives the result.
    fn approval_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Main");
        let decision = root.data_var("decision");
        root.service_parts(
            "archive",
            Condition::neq(Term::var(decision), Term::Null),
            Condition::eq(Term::var(decision), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("approval", db, root.build());
        let mut review = TaskBuilder::new("Review");
        let d = review.data_var("decision");
        review.outputs([d]);
        review.opening_pre(Condition::eq(Term::var(decision), Term::Null));
        review.closing_pre(Condition::or([
            Condition::eq(Term::var(d), Term::str("Approve")),
            Condition::eq(Term::var(d), Term::str("Deny")),
        ]));
        review.service_parts(
            "decide",
            Condition::True,
            Condition::or([
                Condition::eq(Term::var(d), Term::str("Approve")),
                Condition::eq(Term::var(d), Term::str("Deny")),
            ]),
            vec![],
            None,
        );
        b.add_child("Main", review.build()).unwrap();
        b.global_pre(Condition::eq(Term::var(decision), Term::Null));
        b.build().unwrap()
    }

    fn decision_is(v: &str) -> Condition {
        Condition::eq(Term::var(verifas_model::VarId::new(0)), Term::str(v))
    }

    #[test]
    fn satisfied_safety_property_on_root_task() {
        // G ¬(decision = "Garbage"): the review child can only return
        // Approve or Deny... but the closing drops constraints lazily, so
        // the verifier conservatively allows any returned value — the
        // property is therefore *violated* symbolically only if "Garbage"
        // is producible; it is not mentioned anywhere, yet the child's
        // output is unconstrained, so the verifier must report a violation.
        // This documents the over-approximation of child returns.
        let spec = approval_spec();
        let property = LtlFoProperty::new(
            "no-garbage",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(decision_is("Garbage"))],
        );
        let verifier = Verifier::new(&spec, &property, VerifierOptions::default()).unwrap();
        let result = verifier.verify();
        assert_eq!(result.outcome, VerificationOutcome::Violated);
        assert!(result.counterexample.is_some());
    }

    #[test]
    fn violated_property_on_child_task_is_found_with_counterexample() {
        // On the Review task itself: G ¬(decision = "Deny") is violated by
        // a finite local run that decides Deny and closes.
        let spec = approval_spec();
        let property = LtlFoProperty::new(
            "never-deny",
            TaskId::new(1),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(decision_is("Deny"))],
        );
        let verifier = Verifier::new(&spec, &property, VerifierOptions::default()).unwrap();
        let result = verifier.verify();
        assert_eq!(result.outcome, VerificationOutcome::Violated);
        let cex = result.counterexample.unwrap();
        assert!(!cex.services.is_empty());
        assert!(cex.description.contains("Review"));
    }

    #[test]
    fn satisfied_property_on_child_task() {
        // On the Review task: G (close(Review) -> decision ≠ null): the
        // closing condition forces a decision, so this holds.
        let spec = approval_spec();
        let close = verifas_model::ServiceRef::Closing(TaskId::new(1));
        let property = LtlFoProperty::new(
            "closed-means-decided",
            TaskId::new(1),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::prop(1))),
            vec![
                PropAtom::Service(close),
                PropAtom::Condition(Condition::neq(
                    Term::var(verifas_model::VarId::new(0)),
                    Term::Null,
                )),
            ],
        );
        let verifier = Verifier::new(&spec, &property, VerifierOptions::default()).unwrap();
        let result = verifier.verify();
        assert_eq!(result.outcome, VerificationOutcome::Satisfied);
        assert!(result.counterexample.is_none());
    }

    #[test]
    fn ablation_options_produce_the_same_verdicts() {
        let spec = approval_spec();
        let property = LtlFoProperty::new(
            "never-deny",
            TaskId::new(1),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(decision_is("Deny"))],
        );
        let mut verdicts = Vec::new();
        for options in [
            VerifierOptions::default(),
            VerifierOptions::default().without("SP"),
            VerifierOptions::default().without("SA"),
            VerifierOptions::default().without("DSS"),
            VerifierOptions::no_set(),
        ] {
            let verifier = Verifier::new(&spec, &property, options).unwrap();
            verdicts.push(verifier.verify().outcome);
        }
        assert!(verdicts.iter().all(|v| *v == VerificationOutcome::Violated));
    }

    #[test]
    fn elapsed_time_accumulates_phases() {
        let spec = approval_spec();
        let property = LtlFoProperty::new(
            "closed-means-decided",
            TaskId::new(1),
            vec![],
            Ltl::globally(Ltl::prop(0)),
            vec![PropAtom::Condition(Condition::True)],
        );
        let verifier = Verifier::new(&spec, &property, VerifierOptions::default()).unwrap();
        let result = verifier.verify();
        assert!(result.elapsed_ms() >= result.stats.elapsed_ms);
    }
}
