//! Symbolic transitions of a single task (Section 3.2 and Appendix A
//! "Symbolic Transitions").
//!
//! [`SymbolicTask`] pre-compiles every service observable in local runs of
//! the verified task — its internal services, the opening/closing services
//! of its children and its own closing service — into expression-level DNF,
//! projection sets and stored-tuple rename maps.  [`SymbolicTask::successors`]
//! then computes `succ(I)` for a partial symbolic instance `I`:
//!
//! * **internal service** (children must be inactive): extend the type with
//!   a pre-condition conjunct, project onto the propagated variables (plus
//!   globals and constants), extend with a post-condition conjunct, then
//!   apply the artifact-relation update — an insertion increments the
//!   counter of the inserted tuple's type, a retrieval nondeterministically
//!   picks a stored type with positive count, decrements it and conjoins the
//!   retrieved constraints onto the retrieval variables;
//! * **opening of a child**: extend with the opening guard (a condition on
//!   this task's variables) and mark the child active;
//! * **closing of a child**: drop the constraints on the variables
//!   overwritten by the child's output (they are lazily re-constrained by
//!   later conditions) and mark the child inactive;
//! * **own closing service** (non-root tasks): extend with the closing
//!   guard; the resulting instance ends the local run.

use crate::eval::{compile_condition, eval_extensions, CompiledCondition};
use crate::expr::{ExprHead, ExprId, ExprUniverse};
use crate::pit::{Edge, Pit, PitBuilder};
use crate::psi::{InternTypes, Psi};
use std::collections::{BTreeSet, HashMap, HashSet};
use verifas_model::{
    ArtRelId, Condition, DataValue, HasSpec, ServiceRef, TaskId, Update, VarId, VarRef, VarType,
};

/// A pre-compiled artifact-relation update.
#[derive(Debug, Clone)]
struct CompiledUpdate {
    rel: ArtRelId,
    insert: bool,
    /// Expressions kept when projecting the tuple type out of the current
    /// type (headed by the update variables, constants or `null`).
    tuple_keep: HashSet<ExprId>,
    /// Rename map from update-variable-headed expressions to slot-headed
    /// expressions (identity on constants and `null`).
    var_to_slot: HashMap<ExprId, ExprId>,
    /// Inverse map used on retrieval.
    slot_to_var: HashMap<ExprId, ExprId>,
}

/// A pre-compiled observable service.
#[derive(Debug, Clone)]
enum ServiceKind {
    Internal {
        pre: CompiledCondition,
        post: CompiledCondition,
        keep: HashSet<ExprId>,
        update: Option<CompiledUpdate>,
    },
    OpenChild {
        child_index: usize,
        pre: CompiledCondition,
    },
    CloseChild {
        child_index: usize,
        /// Expressions to drop (headed by the parent variables overwritten
        /// by the child's output).
        keep: HashSet<ExprId>,
    },
    CloseSelf {
        pre: CompiledCondition,
    },
}

/// One observable service, compiled.
#[derive(Debug, Clone)]
pub struct SymbolicService {
    /// The service reference (used for LTL service propositions and for
    /// counterexample reporting).
    pub service: ServiceRef,
    kind: ServiceKind,
}

/// The symbolic transition system of one task.
#[derive(Debug, Clone)]
pub struct SymbolicTask {
    /// The underlying specification.
    pub spec: HasSpec,
    /// The verified task.
    pub task: TaskId,
    /// The expression universe of the task (plus property globals).
    pub universe: ExprUniverse,
    /// Whether artifact relations are handled (`false` = the `NoSet`
    /// configuration: updates are ignored).
    pub include_sets: bool,
    services: Vec<SymbolicService>,
    initial_condition: CompiledCondition,
    initial_null_vars: Vec<ExprId>,
    /// Edges proved non-violating by the static analysis (dropped from
    /// every computed type).
    pub static_removed: HashSet<Edge>,
}

impl SymbolicTask {
    /// Build the symbolic transition system for `task` of `spec`.
    ///
    /// `extra_conditions` are the FO conditions of the property being
    /// verified (their constants must be part of the expression universe);
    /// `global_types` are the types of the property's global variables.
    pub fn new(
        spec: &HasSpec,
        task: TaskId,
        extra_conditions: &[Condition],
        global_types: &[VarType],
        include_sets: bool,
    ) -> Self {
        let mut constants = spec_constants(spec);
        for c in extra_conditions {
            constants.extend(c.constants());
        }
        let universe = ExprUniverse::build(spec, task, global_types, &constants);
        Self::with_universe(spec, task, universe, include_sets)
    }

    /// Build the symbolic transition system against a pre-built expression
    /// universe.  The universe must contain every constant of the
    /// specification (see [`spec_constants`]) and of any property that will
    /// be verified against this task — `verifas::Engine` uses this to build
    /// the universe once and share the compiled task across the properties
    /// of a batch.
    pub fn with_universe(
        spec: &HasSpec,
        task: TaskId,
        universe: ExprUniverse,
        include_sets: bool,
    ) -> Self {
        let task_def = spec.task(task);

        // Expressions that always survive projection: constants, null and
        // the property's global variables (they are rigid).
        let persistent: HashSet<ExprId> = universe
            .headed_by(|h| {
                matches!(h, ExprHead::Null | ExprHead::Const(_))
                    || matches!(h, ExprHead::Var(VarRef::Global(_)))
            })
            .into_iter()
            .collect();
        let headed_by_vars = |vars: &[VarId]| -> HashSet<ExprId> {
            let set: BTreeSet<VarId> = vars.iter().copied().collect();
            universe
                .headed_by(|h| matches!(h, ExprHead::Var(VarRef::Task(v)) if set.contains(v)))
                .into_iter()
                .collect()
        };

        let mut services = Vec::new();
        // Internal services.
        for (index, svc) in task_def.services.iter().enumerate() {
            let mut keep: HashSet<ExprId> = persistent.clone();
            keep.extend(headed_by_vars(&svc.propagated));
            let update = if include_sets {
                svc.update
                    .as_ref()
                    .map(|u| compile_update(&universe, task_def, u, &persistent))
            } else {
                None
            };
            services.push(SymbolicService {
                service: ServiceRef::Internal { task, index },
                kind: ServiceKind::Internal {
                    pre: compile_condition(&svc.pre, &universe),
                    post: compile_condition(&svc.post, &universe),
                    keep,
                    update,
                },
            });
        }
        // Children opening/closing services.
        for (child_index, &child) in task_def.children.iter().enumerate() {
            let child_def = spec.task(child);
            services.push(SymbolicService {
                service: ServiceRef::Opening(child),
                kind: ServiceKind::OpenChild {
                    child_index,
                    pre: compile_condition(&child_def.opening.pre, &universe),
                },
            });
            // Parent variables overwritten when the child returns.
            let returned: Vec<VarId> = child_def
                .closing
                .output_map
                .iter()
                .map(|(_, pv)| *pv)
                .collect();
            let dropped = headed_by_vars(&returned);
            let keep: HashSet<ExprId> = universe
                .headed_by(|_| true)
                .into_iter()
                .filter(|e| !dropped.contains(e))
                .collect();
            services.push(SymbolicService {
                service: ServiceRef::Closing(child),
                kind: ServiceKind::CloseChild { child_index, keep },
            });
        }
        // The task's own closing service (never fires for the root, whose
        // closing condition is `false`).
        if task != spec.root() {
            services.push(SymbolicService {
                service: ServiceRef::Closing(task),
                kind: ServiceKind::CloseSelf {
                    pre: compile_condition(&task_def.closing.pre, &universe),
                },
            });
        }
        // Initial configuration.
        let (initial_condition, initial_null_vars) = if task == spec.root() {
            (compile_condition(&spec.global_pre, &universe), Vec::new())
        } else {
            let inputs: BTreeSet<VarId> = task_def.input_vars.iter().copied().collect();
            let nulls = task_def
                .iter_vars()
                .filter(|(v, _)| !inputs.contains(v))
                .filter_map(|(v, _)| universe.var_expr(VarRef::Task(v)))
                .collect();
            (CompiledCondition::trivial(), nulls)
        };
        SymbolicTask {
            spec: spec.clone(),
            task,
            universe,
            include_sets,
            services,
            initial_condition,
            initial_null_vars,
            static_removed: HashSet::new(),
        }
    }

    /// The compiled observable services (in a fixed order: internal
    /// services, then children opening/closing pairs, then the own closing
    /// service).
    pub fn services(&self) -> &[SymbolicService] {
        &self.services
    }

    /// The opening service of the verified task (the first letter of every
    /// local run).
    pub fn opening_service(&self) -> ServiceRef {
        ServiceRef::Opening(self.task)
    }

    /// `true` iff `service` is the verified task's own closing service.
    pub fn is_own_closing(&self, service: ServiceRef) -> bool {
        service == ServiceRef::Closing(self.task)
    }

    /// The partial isomorphism types of the initial instance: for the root
    /// task, the minimal extensions of the empty type satisfying the global
    /// pre-condition; for other tasks, all non-input variables are `null`
    /// and the (parent-provided) input variables are unconstrained.
    pub fn initial_pits(&self) -> Vec<Pit> {
        let mut base = PitBuilder::new(&self.universe);
        let null = self.universe.null_expr();
        for &v in &self.initial_null_vars {
            base.assert_eq(v, null);
        }
        let base = base
            .finish()
            .expect("null initialisation is always consistent");
        eval_extensions(
            &base,
            &self.initial_condition,
            &self.universe,
            &self.static_removed,
        )
    }

    /// `succ(I)`: every successor of the partial symbolic instance under
    /// one application of an observable service, together with the service
    /// that produced it.
    pub fn successors(&self, psi: &Psi, interner: &mut dyn InternTypes) -> Vec<(ServiceRef, Psi)> {
        let mut out = Vec::new();
        for svc in &self.services {
            match &svc.kind {
                ServiceKind::Internal {
                    pre,
                    post,
                    keep,
                    update,
                } => {
                    if !psi.no_child_active() {
                        continue;
                    }
                    for tau0 in eval_extensions(&psi.pit, pre, &self.universe, &HashSet::new()) {
                        let tau1 = tau0.project(|e| keep.contains(&e));
                        for tau2 in
                            eval_extensions(&tau1, post, &self.universe, &self.static_removed)
                        {
                            match update {
                                None => out.push((
                                    svc.service,
                                    Psi {
                                        pit: tau2.clone(),
                                        counters: psi.counters.clone(),
                                        child_active: psi.child_active,
                                    },
                                )),
                                Some(u) if u.insert => {
                                    let tuple = tau0.project(|e| u.tuple_keep.contains(&e));
                                    let stored =
                                        tuple.rename(&self.universe, &u.var_to_slot).expect(
                                            "renaming a consistent tuple type stays consistent",
                                        );
                                    let id = interner.intern(u.rel, stored);
                                    out.push((
                                        svc.service,
                                        Psi {
                                            pit: tau2.clone(),
                                            counters: psi.counters.incremented(id),
                                            child_active: psi.child_active,
                                        },
                                    ));
                                }
                                Some(u) => {
                                    // Retrieval: pick any stored type of this
                                    // relation with a positive count.
                                    for (tid, _count) in psi.counters.iter() {
                                        let (rel, stored) = interner.get(tid).clone();
                                        if rel != u.rel {
                                            continue;
                                        }
                                        let Some(retrieved) =
                                            stored.rename(&self.universe, &u.slot_to_var)
                                        else {
                                            continue;
                                        };
                                        let Some(tau3) = tau2.conjoin(&retrieved, &self.universe)
                                        else {
                                            continue;
                                        };
                                        let Some(counters) = psi.counters.decremented(tid) else {
                                            continue;
                                        };
                                        out.push((
                                            svc.service,
                                            Psi {
                                                pit: tau3.without_edges(&self.static_removed),
                                                counters,
                                                child_active: psi.child_active,
                                            },
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
                ServiceKind::OpenChild { child_index, pre } => {
                    if psi.child_is_active(*child_index) {
                        continue;
                    }
                    for tau in eval_extensions(&psi.pit, pre, &self.universe, &self.static_removed)
                    {
                        out.push((
                            svc.service,
                            Psi {
                                pit: tau,
                                counters: psi.counters.clone(),
                                child_active: psi.child_active | (1 << child_index),
                            },
                        ));
                    }
                }
                ServiceKind::CloseChild { child_index, keep } => {
                    if !psi.child_is_active(*child_index) {
                        continue;
                    }
                    let tau = psi.pit.project(|e| keep.contains(&e));
                    out.push((
                        svc.service,
                        Psi {
                            pit: tau,
                            counters: psi.counters.clone(),
                            child_active: psi.child_active & !(1 << child_index),
                        },
                    ));
                }
                ServiceKind::CloseSelf { pre } => {
                    if !psi.no_child_active() {
                        continue;
                    }
                    for tau in eval_extensions(&psi.pit, pre, &self.universe, &self.static_removed)
                    {
                        out.push((
                            svc.service,
                            Psi {
                                pit: tau,
                                counters: psi.counters.clone(),
                                child_active: psi.child_active,
                            },
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Every constant occurring in the conditions of a specification (service
/// pre/post conditions, opening/closing guards, the global pre-condition).
///
/// The expression universe of a verified task must contain at least these,
/// plus the constants of the property being verified.
pub fn spec_constants(spec: &HasSpec) -> BTreeSet<DataValue> {
    let mut constants: BTreeSet<DataValue> = BTreeSet::new();
    for t in &spec.tasks {
        for svc in &t.services {
            constants.extend(svc.pre.constants());
            constants.extend(svc.post.constants());
        }
        constants.extend(t.opening.pre.constants());
        constants.extend(t.closing.pre.constants());
    }
    constants.extend(spec.global_pre.constants());
    constants
}

fn compile_update(
    universe: &ExprUniverse,
    task_def: &verifas_model::Task,
    update: &Update,
    persistent: &HashSet<ExprId>,
) -> CompiledUpdate {
    let rel = update.relation();
    let vars = update.vars();
    let mut tuple_keep = persistent.clone();
    let mut var_to_slot = HashMap::new();
    let mut slot_to_var = HashMap::new();
    // Constants and null map to themselves in both directions.
    for e in persistent {
        var_to_slot.insert(*e, *e);
        slot_to_var.insert(*e, *e);
    }
    for (col, &v) in vars.iter().enumerate() {
        let var_head = ExprHead::Var(VarRef::Task(v));
        let slot_head = ExprHead::Slot(rel, col as u32);
        for e in universe.headed_by(|h| *h == var_head) {
            tuple_keep.insert(e);
            if let Some(slot_e) = universe.rebase(e, &var_head, &slot_head) {
                var_to_slot.insert(e, slot_e);
                slot_to_var.insert(slot_e, e);
            }
        }
    }
    let _ = task_def;
    CompiledUpdate {
        rel,
        insert: update.is_insert(),
        tuple_keep,
        var_to_slot,
        slot_to_var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psi::StoredTypeInterner;
    use verifas_model::schema::attr::data;
    use verifas_model::{DatabaseSchema, SpecBuilder, TaskBuilder, Term};

    /// A single-task workflow with a pool: start sets status, stash stores
    /// it and resets, unstash retrieves it.
    fn pool_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        let pool = root.art_relation_like("POOL", &[status]);
        root.service_parts(
            "start",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Working")),
            vec![],
            None,
        );
        root.service_parts(
            "stash",
            Condition::eq(Term::var(status), Term::str("Working")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            Some(Update::Insert {
                rel: pool,
                vars: vec![status],
            }),
        );
        root.service_parts(
            "unstash",
            Condition::eq(Term::var(status), Term::Null),
            Condition::True,
            vec![],
            Some(Update::Retrieve {
                rel: pool,
                vars: vec![status],
            }),
        );
        let mut b = SpecBuilder::new("pool", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    #[test]
    fn initial_pits_satisfy_the_global_precondition() {
        let spec = pool_spec();
        let st = SymbolicTask::new(&spec, spec.root(), &[], &[], true);
        let pits = st.initial_pits();
        assert_eq!(pits.len(), 1);
        let status = st.universe.var_expr(VarRef::Task(VarId::new(0))).unwrap();
        assert!(pits[0].contains(Edge::eq(status, st.universe.null_expr())));
    }

    #[test]
    fn insert_and_retrieve_round_trip_constraints_through_counters() {
        let spec = pool_spec();
        let st = SymbolicTask::new(&spec, spec.root(), &[], &[], true);
        let mut interner = StoredTypeInterner::new();
        let status = st.universe.var_expr(VarRef::Task(VarId::new(0))).unwrap();
        let working = st.universe.const_expr(&DataValue::str("Working")).unwrap();

        let initial = Psi::with_pit(st.initial_pits().remove(0));
        // start: only the "start" service applies (status = null holds).
        let succs = st.successors(&initial, &mut interner);
        let started: Vec<&Psi> = succs
            .iter()
            .filter(|(s, _)| matches!(s, ServiceRef::Internal { index: 0, .. }))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(started.len(), 1);
        assert!(started[0].pit.contains(Edge::eq(status, working)));

        // stash: inserts a tuple whose stored type records status = "Working".
        let succs = st.successors(started[0], &mut interner);
        let stashed: Vec<&Psi> = succs
            .iter()
            .filter(|(s, _)| matches!(s, ServiceRef::Internal { index: 1, .. }))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(stashed.len(), 1);
        assert_eq!(stashed[0].counters.total(), 1);
        assert!(stashed[0]
            .pit
            .contains(Edge::eq(status, st.universe.null_expr())));
        let (_, stored_type) = interner.get(stashed[0].counters.iter().next().unwrap().0);
        let slot = st.universe.slot_expr(ArtRelId::new(0), 0).unwrap();
        assert!(stored_type.contains(Edge::eq(slot, working)));

        // unstash: the retrieved tuple re-imposes status = "Working".
        let succs = st.successors(stashed[0], &mut interner);
        let unstashed: Vec<&Psi> = succs
            .iter()
            .filter(|(s, _)| matches!(s, ServiceRef::Internal { index: 2, .. }))
            .map(|(_, p)| p)
            .collect();
        assert_eq!(unstashed.len(), 1);
        assert_eq!(unstashed[0].counters.total(), 0);
        assert!(unstashed[0].pit.contains(Edge::eq(status, working)));
    }

    #[test]
    fn retrieval_from_empty_counters_produces_no_successor() {
        let spec = pool_spec();
        let st = SymbolicTask::new(&spec, spec.root(), &[], &[], true);
        let mut interner = StoredTypeInterner::new();
        let initial = Psi::with_pit(st.initial_pits().remove(0));
        let succs = st.successors(&initial, &mut interner);
        assert!(succs
            .iter()
            .all(|(s, _)| !matches!(s, ServiceRef::Internal { index: 2, .. })));
    }

    #[test]
    fn noset_mode_ignores_artifact_relation_updates() {
        let spec = pool_spec();
        let st = SymbolicTask::new(&spec, spec.root(), &[], &[], false);
        let mut interner = StoredTypeInterner::new();
        let initial = Psi::with_pit(st.initial_pits().remove(0));
        let succs = st.successors(&initial, &mut interner);
        // In NoSet mode the retrieval service behaves like a plain internal
        // service (its pre-condition status = null holds initially).
        assert!(succs
            .iter()
            .any(|(s, _)| matches!(s, ServiceRef::Internal { index: 2, .. })));
        // And insertions do not touch counters.
        let started = succs
            .iter()
            .find(|(s, _)| matches!(s, ServiceRef::Internal { index: 0, .. }))
            .unwrap()
            .1
            .clone();
        let succs = st.successors(&started, &mut interner);
        let stashed = succs
            .iter()
            .find(|(s, _)| matches!(s, ServiceRef::Internal { index: 1, .. }))
            .unwrap();
        assert_eq!(stashed.1.counters.total(), 0);
        assert_eq!(interner.len(), 0);
    }

    #[test]
    fn child_open_close_toggles_activity_and_drops_returned_constraints() {
        // Root with a child returning into the root's `result` variable.
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let result = root.data_var("result");
        root.service_parts(
            "consume",
            Condition::eq(Term::var(result), Term::str("Done")),
            Condition::eq(Term::var(result), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("pc", db, root.build());
        let mut child = TaskBuilder::new("Child");
        let r = child.data_var("result");
        child.outputs([r]);
        child.opening_pre(Condition::eq(Term::var(result), Term::Null));
        child.closing_pre(Condition::neq(Term::var(r), Term::Null));
        child.service_parts(
            "work",
            Condition::True,
            Condition::eq(Term::var(r), Term::str("Done")),
            vec![],
            None,
        );
        b.add_child("Root", child.build()).unwrap();
        b.global_pre(Condition::eq(Term::var(result), Term::Null));
        let spec = b.build().unwrap();

        let st = SymbolicTask::new(&spec, spec.root(), &[], &[], true);
        let mut interner = StoredTypeInterner::new();
        let initial = Psi::with_pit(st.initial_pits().remove(0));
        // Only the child opening applies initially (consume's pre fails).
        let succs = st.successors(&initial, &mut interner);
        assert_eq!(succs.len(), 1);
        let (svc, opened) = &succs[0];
        assert!(matches!(svc, ServiceRef::Opening(t) if t.index() == 1));
        assert!(opened.child_is_active(0));
        // While the child is active, no internal service applies; only the
        // child's closing.
        let succs = st.successors(opened, &mut interner);
        assert_eq!(succs.len(), 1);
        let (svc, closed) = &succs[0];
        assert!(matches!(svc, ServiceRef::Closing(t) if t.index() == 1));
        assert!(closed.no_child_active());
        // The constraint result = null was dropped by the child's return, so
        // `consume` (which needs result = "Done") becomes possible.
        let succs = st.successors(closed, &mut interner);
        assert!(succs
            .iter()
            .any(|(s, _)| matches!(s, ServiceRef::Internal { index: 0, .. })));
    }
}
