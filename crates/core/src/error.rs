//! The typed top-level error of the VERIFAS public API.
//!
//! Every fallible operation of [`crate::engine::Engine`] (and the
//! deprecated `Verifier` front-end behind it) reports a [`VerifasError`]
//! instead of passing raw [`ModelError`]s through or panicking: callers of
//! a long-lived verification service need to distinguish "your
//! specification is malformed" from "your request is malformed" without
//! string-matching.

use crate::json::JsonError;
use std::fmt;
use verifas_model::ModelError;

/// The optimisation names accepted by
/// [`crate::verifier::VerifierOptions::try_without`].
pub const VALID_OPTIMIZATIONS: &[&str] = &["SP", "SA", "DSS"];

/// A position within a textual specification source (1-based line and
/// column), attached to [`VerifasError::Spec`] diagnostics so tools can
/// point at the offending construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SourceSpan {
    /// 1-based line number (0 when the location is unknown).
    pub line: u32,
    /// 1-based column number (0 when the location is unknown).
    pub column: u32,
}

impl SourceSpan {
    /// A span pointing at the given 1-based line and column.
    pub fn new(line: u32, column: u32) -> Self {
        SourceSpan { line, column }
    }
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Top-level error type of the `verifas` public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifasError {
    /// The specification (or the property checked against it) is
    /// malformed.
    Model(ModelError),
    /// An unknown optimisation name was passed to
    /// [`crate::verifier::VerifierOptions::try_without`].
    UnknownOptimization {
        /// The name that was not recognised.
        given: String,
    },
    /// A verification was started without a property
    /// (`engine.verification().run()` before `.property(...)`).
    MissingProperty,
    /// A serialized [`crate::report::VerificationReport`] could not be
    /// parsed.
    MalformedReport {
        /// What was wrong with the document.
        reason: String,
    },
    /// A worker thread of a batched run ([`crate::engine::Engine::check_all`])
    /// failed — panicked, or exited without reporting a result.  The batch
    /// surfaces this as a per-property error instead of aborting the
    /// process.
    Internal {
        /// What the worker reported (a panic message when available).
        reason: String,
    },
    /// A textual specification (`.has` file, see the `verifas-spec` crate)
    /// could not be parsed, type-checked or lowered.  The span points at
    /// the offending construct in the source text.
    Spec {
        /// Where in the source the problem was detected (1-based
        /// line/column; 0:0 when the location is unknown).
        span: SourceSpan,
        /// What was wrong.
        message: String,
    },
    /// A memory-budgeted search ran out of its byte budget
    /// ([`crate::memory::MemoryBudget`]) and stopped at a round boundary —
    /// a graceful, typed degradation instead of an OOM abort.  Carries
    /// what the search had explored so the caller can report progress.
    ResourceExhausted {
        /// States the search had created when the budget ran out.
        states: usize,
        /// Estimated resident bytes of the search at that point.
        bytes: usize,
        /// The byte budget that was exceeded.
        limit_bytes: usize,
    },
}

impl fmt::Display for VerifasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifasError::Model(e) => write!(f, "specification error: {e}"),
            VerifasError::UnknownOptimization { given } => write!(
                f,
                "unknown optimization {given:?}; valid names are {VALID_OPTIMIZATIONS:?}"
            ),
            VerifasError::MissingProperty => {
                write!(f, "no property was set on the verification request")
            }
            VerifasError::MalformedReport { reason } => {
                write!(f, "malformed verification report: {reason}")
            }
            VerifasError::Internal { reason } => {
                write!(f, "internal verification failure: {reason}")
            }
            VerifasError::Spec { span, message } => {
                write!(f, "specification syntax error at {span}: {message}")
            }
            VerifasError::ResourceExhausted {
                states,
                bytes,
                limit_bytes,
            } => {
                write!(
                    f,
                    "memory budget exhausted: search held ~{bytes} bytes of a \
                     {limit_bytes}-byte budget after exploring {states} states"
                )
            }
        }
    }
}

/// Best-effort rendering of a panic payload (the common `&str` / `String`
/// cases; anything else is reported opaquely).  Shared by every
/// panic-containment site — the batch scheduler's per-property
/// `catch_unwind` and the worker-pool join paths of the search and the
/// repeated-reachability edge construction — so the `reason` strings of
/// the resulting [`VerifasError::Internal`] errors stay uniform.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl std::error::Error for VerifasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifasError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for VerifasError {
    fn from(e: ModelError) -> Self {
        VerifasError::Model(e)
    }
}

impl From<JsonError> for VerifasError {
    fn from(e: JsonError) -> Self {
        VerifasError::MalformedReport {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_valid_optimizations() {
        let e = VerifasError::UnknownOptimization {
            given: "SPP".to_owned(),
        };
        let text = e.to_string();
        for name in VALID_OPTIMIZATIONS {
            assert!(text.contains(name), "{text:?} must list {name}");
        }
    }

    #[test]
    fn spec_errors_carry_their_source_location() {
        let e = VerifasError::Spec {
            span: SourceSpan::new(3, 14),
            message: "unknown variable `statu`".to_owned(),
        };
        assert_eq!(
            e.to_string(),
            "specification syntax error at 3:14: unknown variable `statu`"
        );
    }

    #[test]
    fn model_errors_convert_and_chain() {
        let model = ModelError::InvalidSpec {
            reason: "no root".to_owned(),
        };
        let top: VerifasError = model.clone().into();
        assert_eq!(top, VerifasError::Model(model));
        assert!(std::error::Error::source(&top).is_some());
    }
}
