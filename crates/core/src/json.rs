//! A minimal JSON value type, writer and parser.
//!
//! The build environment has no access to crates.io, so the machine-
//! readable [`crate::report::VerificationReport`] serialization is
//! implemented over this self-contained module instead of `serde`.  It
//! supports the full JSON data model except exotic number forms: numbers
//! are parsed as `f64` (integers up to 2^53 round-trip exactly, far beyond
//! any counter a verification run produces).
//!
//! Object member order is preserved, so serializing a parsed document
//! reproduces it byte for byte (modulo insignificant whitespace, which the
//! writer never emits).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax or shape error, with a byte offset for syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected (0 for shape
    /// errors raised after parsing).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Shape-checked member access: `get` that fails with a [`JsonError`]
    /// naming the missing key.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            message: format!("missing object member {key:?}"),
            offset: 0,
        })
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the report
                            // format; map lone surrogates to the replacement
                            // character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let text = r#"{"a":1,"b":[true,false,null],"c":{"d":"x \"y\" \n z"},"e":-2.5}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.to_string(), text);
        assert_eq!(Json::parse(&parsed.to_string()).unwrap(), parsed);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 42, "s": "hi", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
        assert!(doc.require("missing").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "nulL", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn large_integers_round_trip() {
        let doc = Json::Obj(vec![(
            "ms".to_owned(),
            Json::Num(9_007_199_254_740_992.0 - 1.0),
        )]);
        let reparsed = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(reparsed.get("ms").unwrap().as_u64(), Some((1u64 << 53) - 1));
    }
}
