//! # verifas-core — the VERIFAS symbolic verifier
//!
//! This crate implements the verifier described in Section 3 of
//! "VERIFAS: A Practical Verifier for Artifact Systems" (VLDB 2017):
//!
//! * [`expr`] — the finite universe of foreign-key navigation expressions,
//! * [`pit`] — partial isomorphism types with congruence closure,
//! * [`eval`] — condition evaluation producing minimal extensions,
//! * [`psi`] — partial symbolic instances (types + counters + child flags),
//! * [`transition`] — the symbolic `succ` function over one task,
//! * [`product`] — the product with the Büchi automaton of the negated
//!   property,
//! * [`coverage`] — the `≤`, `≼` and `≼⁺` comparison relations (the latter
//!   two via a max-flow reduction),
//! * [`index`] — Trie / inverted-list indices for candidate filtering,
//! * [`arena`] — arena-backed structure-of-arrays storage for the search
//!   tree (deduplicated types, counters and dense node columns),
//! * [`static_analysis`] — the non-violating-edge analysis of Section 3.7,
//! * [`search`] — the Karp–Miller search with monotone pruning and
//!   acceleration,
//! * [`repeated`] — repeated reachability for full LTL-FO support
//!   (Appendix C),
//! * [`schedule`] — the sharded batch scheduler: adaptive core
//!   partitioning between batch width and per-search depth,
//! * [`memory`] — byte-accounted memory budgets: searches lease from a
//!   shared pool and degrade to a typed error instead of an OOM abort,
//! * [`verifier`] — the user-facing API tying everything together,
//! * [`delta`] — structural spec diffing and the transition memo behind
//!   incremental re-verification ([`engine::Engine::load_delta`]),
//! * [`baseline`] — the unoptimised baseline standing in for the Spin-based
//!   verifier of the paper,
//! * [`vass`] — a small generic VASS + classic Karp–Miller implementation
//!   used for testing and benchmarking the search machinery in isolation.

pub mod arena;
pub mod baseline;
pub mod counters;
pub mod coverage;
pub mod delta;
pub mod engine;
pub mod error;
pub mod eval;
pub mod expr;
pub mod index;
pub mod json;
pub mod memory;
pub mod observer;
pub mod pit;
pub mod product;
pub mod psi;
pub mod repeated;
pub mod report;
pub mod schedule;
pub mod search;
pub mod static_analysis;
pub mod transition;
pub mod vass;
pub mod verifier;

pub use arena::{CounterArena, PitArena, StateArena};
pub use baseline::BaselineVerifier;
pub use coverage::{accelerate, covers, CoverageKind};
pub use delta::{fingerprint, slice_hash, DeltaSummary, ReuseMode, SpecDelta, TaskDelta};
pub use engine::{
    spec_hash, spec_hash_hex, BatchBuilder, BatchEventSink, BatchResultCallback, BatchSummary,
    Engine, VerificationBuilder,
};
pub use error::{SourceSpan, VerifasError, VALID_OPTIMIZATIONS};
pub use expr::{ExprHead, ExprId, ExprSort, ExprUniverse};
pub use json::{Json, JsonError};
pub use memory::{MemoryBudget, MemoryLease};
pub use observer::{CancelToken, Phase, ProgressEvent, ProgressObserver, SearchControl};
pub use pit::{Edge, Pit, PitBuilder};
pub use product::{ProductState, ProductSuccessor, ProductSystem, StateView};
pub use psi::{
    CounterVec, InternTypes, Psi, StoredTypeId, StoredTypeInterner, TypeTable, WorkerInterner,
    OMEGA,
};
pub use repeated::{
    find_infinite_violation, find_infinite_violation_reference, find_infinite_violation_with,
    CycleStats, InfiniteViolation, RepeatedOutcome,
};
pub use report::{VerificationReport, Witness, WitnessStep, REPORT_SCHEMA_VERSION};
pub use schedule::{
    BatchOptions, OccupancySample, SchedulePolicy, ScheduleStats, Scheduler, SchedulerHandle,
    ThreadBudget,
};
pub use search::{KarpMillerSearch, SearchLimits, SearchOutcome, SearchStats, WorkerStats};
pub use transition::{spec_constants, SymbolicTask};
#[allow(deprecated)]
pub use verifier::Verifier;
pub use verifier::{
    run_verification, Counterexample, VerificationOutcome, VerificationResult, VerifierOptions,
};
