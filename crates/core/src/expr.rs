//! Foreign-key navigation expressions (paper Section 3.2).
//!
//! For a fixed task (plus the global variables of the property being
//! verified), the *expression universe* `E` contains
//!
//! * the constants occurring in the specification or the property
//!   (including `null`),
//! * every artifact variable of the task and every global property
//!   variable,
//! * one *slot* per column of each artifact relation of the task (used to
//!   describe the isomorphism types of stored tuples),
//! * all navigations `ξ.A₁.…​.Aₖ` obtained by following foreign keys from
//!   an ID-typed expression, which are finitely many because the database
//!   schema is acyclic.
//!
//! Expressions are interned to dense ids so that partial isomorphism types
//! can be stored as sorted edge lists over `u32` pairs.

use std::collections::{BTreeSet, HashMap};
use verifas_model::{
    ArtRelId, AttrId, AttrKind, DataValue, HasSpec, RelId, TaskId, VarRef, VarType,
};

/// Dense identifier of an expression within an [`ExprUniverse`].
pub type ExprId = u32;

/// The root ("head") of an expression: what the navigation path starts
/// from.  Projection keeps or drops an expression based on its head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExprHead {
    /// The constant `null`.
    Null,
    /// A data constant (index into the universe's constant table).
    Const(u32),
    /// A task variable or a global property variable.
    Var(VarRef),
    /// Column `col` of artifact relation `rel` of the task.
    Slot(ArtRelId, u32),
}

/// The sort (type) of an expression, used for consistency checks when
/// merging equivalence classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExprSort {
    /// The `null` constant (member of every domain).
    Null,
    /// A specific data constant.
    DataConst,
    /// A data-valued expression.
    Data,
    /// An ID-valued expression of the given relation.
    Id(RelId),
}

/// One expression of the universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Head of the navigation path.
    pub head: ExprHead,
    /// Attribute path followed from the head (empty for the head itself).
    pub path: Vec<AttrId>,
    /// Sort of the expression.
    pub sort: ExprSort,
    /// Constant value if the expression is a constant.
    pub constant: Option<DataValue>,
    /// Navigation children: `(attribute, child expression)` pairs, present
    /// only for ID-sorted expressions.
    pub children: Vec<(AttrId, ExprId)>,
    /// Parent expression and the attribute navigated to reach this one.
    pub parent: Option<(ExprId, AttrId)>,
}

/// The interned expression universe of one task (plus property globals).
#[derive(Debug, Clone)]
pub struct ExprUniverse {
    exprs: Vec<Expr>,
    constants: Vec<DataValue>,
    null_id: ExprId,
    const_ids: HashMap<DataValue, ExprId>,
    var_ids: HashMap<VarRef, ExprId>,
    slot_ids: HashMap<(ArtRelId, u32), ExprId>,
}

impl ExprUniverse {
    /// Build the expression universe for `task` of `spec`, with the given
    /// global-variable types and the set of constants collected from the
    /// specification and the property.
    pub fn build(
        spec: &HasSpec,
        task: TaskId,
        global_types: &[VarType],
        constants: &BTreeSet<DataValue>,
    ) -> Self {
        crate::counters::UNIVERSE_BUILDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut universe = ExprUniverse {
            exprs: Vec::new(),
            constants: Vec::new(),
            null_id: 0,
            const_ids: HashMap::new(),
            var_ids: HashMap::new(),
            slot_ids: HashMap::new(),
        };
        // null first.
        universe.null_id = universe.push(Expr {
            head: ExprHead::Null,
            path: vec![],
            sort: ExprSort::Null,
            constant: None,
            children: vec![],
            parent: None,
        });
        // Constants.
        for c in constants {
            let idx = universe.constants.len() as u32;
            universe.constants.push(c.clone());
            let id = universe.push(Expr {
                head: ExprHead::Const(idx),
                path: vec![],
                sort: ExprSort::DataConst,
                constant: Some(c.clone()),
                children: vec![],
                parent: None,
            });
            universe.const_ids.insert(c.clone(), id);
        }
        // Task variables and property globals, with navigation closure.
        let task_def = spec.task(task);
        let mut roots: Vec<(ExprHead, VarType)> = Vec::new();
        for (vid, var) in task_def.iter_vars() {
            roots.push((ExprHead::Var(VarRef::Task(vid)), var.typ));
        }
        for (g, typ) in global_types.iter().enumerate() {
            roots.push((ExprHead::Var(VarRef::Global(g as u32)), *typ));
        }
        for (rid, rel) in task_def.art_relations.iter().enumerate() {
            for (col, column) in rel.columns.iter().enumerate() {
                roots.push((
                    ExprHead::Slot(ArtRelId::new(rid as u32), col as u32),
                    column.typ,
                ));
            }
        }
        for (head, typ) in roots {
            let sort = match typ {
                VarType::Data => ExprSort::Data,
                VarType::Id(rel) => ExprSort::Id(rel),
            };
            let id = universe.push(Expr {
                head,
                path: vec![],
                sort,
                constant: None,
                children: vec![],
                parent: None,
            });
            match head {
                ExprHead::Var(v) => {
                    universe.var_ids.insert(v, id);
                }
                ExprHead::Slot(rel, col) => {
                    universe.slot_ids.insert((rel, col), id);
                }
                _ => unreachable!(),
            }
            if let VarType::Id(rel) = typ {
                universe.expand_navigation(spec, id, rel);
            }
        }
        universe
    }

    fn push(&mut self, e: Expr) -> ExprId {
        let id = self.exprs.len() as ExprId;
        self.exprs.push(e);
        id
    }

    /// Recursively add navigation children of an ID-sorted expression.
    fn expand_navigation(&mut self, spec: &HasSpec, parent: ExprId, rel: RelId) {
        let relation = spec.db.relation(rel).clone();
        for (attr_idx, attr) in relation.attrs.iter().enumerate() {
            let attr_id = AttrId::new(attr_idx as u32);
            let (sort, child_rel) = match attr.kind {
                AttrKind::NonKey => (ExprSort::Data, None),
                AttrKind::ForeignKey(target) => (ExprSort::Id(target), Some(target)),
            };
            let mut path = self.exprs[parent as usize].path.clone();
            path.push(attr_id);
            let head = self.exprs[parent as usize].head;
            let child = self.push(Expr {
                head,
                path,
                sort,
                constant: None,
                children: vec![],
                parent: Some((parent, attr_id)),
            });
            self.exprs[parent as usize].children.push((attr_id, child));
            if let Some(target) = child_rel {
                self.expand_navigation(spec, child, target);
            }
        }
    }

    /// Number of expressions.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// `true` iff the universe is empty (never the case after `build`).
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// The expression with the given id.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id as usize]
    }

    /// The id of the `null` expression.
    pub fn null_expr(&self) -> ExprId {
        self.null_id
    }

    /// The id of a constant expression (if the constant was collected).
    pub fn const_expr(&self, c: &DataValue) -> Option<ExprId> {
        self.const_ids.get(c).copied()
    }

    /// The id of a variable expression.
    pub fn var_expr(&self, v: VarRef) -> Option<ExprId> {
        self.var_ids.get(&v).copied()
    }

    /// The id of the expression for column `col` of artifact relation
    /// `rel`.
    pub fn slot_expr(&self, rel: ArtRelId, col: u32) -> Option<ExprId> {
        self.slot_ids.get(&(rel, col)).copied()
    }

    /// Navigate one attribute from an ID-sorted expression.
    pub fn navigate(&self, parent: ExprId, attr: AttrId) -> Option<ExprId> {
        self.expr(parent)
            .children
            .iter()
            .find(|(a, _)| *a == attr)
            .map(|(_, c)| *c)
    }

    /// All expressions whose head satisfies the predicate (the expression
    /// itself and all its navigations).
    pub fn headed_by(&self, pred: impl Fn(&ExprHead) -> bool) -> Vec<ExprId> {
        (0..self.exprs.len() as ExprId)
            .filter(|&id| pred(&self.exprs[id as usize].head))
            .collect()
    }

    /// Map an expression headed by variable `from` to the corresponding
    /// expression (same navigation path) headed by `to_head`, which must
    /// have the same type.  Returns `None` when the expression is not
    /// headed by `from`.
    pub fn rebase(&self, expr: ExprId, from: &ExprHead, to_head: &ExprHead) -> Option<ExprId> {
        let e = self.expr(expr);
        if e.head != *from {
            return None;
        }
        // Find the root expression with head `to_head` and walk the path.
        let mut current = match to_head {
            ExprHead::Var(v) => self.var_expr(*v)?,
            ExprHead::Slot(rel, col) => self.slot_expr(*rel, *col)?,
            ExprHead::Null => self.null_id,
            ExprHead::Const(idx) => self
                .const_ids
                .get(&self.constants[*idx as usize])
                .copied()?,
        };
        for attr in &e.path {
            current = self.navigate(current, *attr)?;
        }
        Some(current)
    }

    /// Iterate over all `(ExprId, &Expr)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &Expr)> {
        self.exprs.iter().enumerate().map(|(i, e)| (i as ExprId, e))
    }

    /// Human-readable rendering of an expression (for counterexamples and
    /// debugging).
    pub fn display(&self, spec: &HasSpec, task: TaskId, id: ExprId) -> String {
        let e = self.expr(id);
        let mut out = match &e.head {
            ExprHead::Null => "null".to_owned(),
            ExprHead::Const(idx) => format!("{}", self.constants[*idx as usize]),
            ExprHead::Var(VarRef::Task(v)) => spec.task(task).var(*v).name.clone(),
            ExprHead::Var(VarRef::Global(g)) => format!("$g{g}"),
            ExprHead::Slot(rel, col) => {
                let r = spec.task(task).art_rel(*rel);
                format!("{}[{}]", r.name, r.columns[*col as usize].name)
            }
        };
        // Resolve attribute names along the path.
        let mut sort = {
            // Determine the relation of the head if ID-sorted.
            let root = match &e.head {
                ExprHead::Var(v) => self.var_expr(*v),
                ExprHead::Slot(rel, col) => self.slot_expr(*rel, *col),
                _ => None,
            };
            root.map(|r| self.expr(r).sort)
        };
        for attr in &e.path {
            if let Some(ExprSort::Id(rel)) = sort {
                let relation = spec.db.relation(rel);
                let a = relation.attr(*attr);
                out.push('.');
                out.push_str(&a.name);
                sort = Some(match a.kind {
                    AttrKind::NonKey => ExprSort::Data,
                    AttrKind::ForeignKey(t) => ExprSort::Id(t),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_model::schema::attr::{data, fk};
    use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, Term, VarId};

    /// Order-fulfillment-like spec: CUSTOMERS -> CREDIT_RECORD chain plus a
    /// task with one ID variable, one data variable and an artifact
    /// relation.
    fn spec() -> (HasSpec, RelId, RelId) {
        let mut db = DatabaseSchema::new();
        let credit = db
            .add_relation("CREDIT_RECORD", vec![data("status")])
            .unwrap();
        let customers = db
            .add_relation("CUSTOMERS", vec![data("name"), fk("record", credit)])
            .unwrap();
        let mut root = TaskBuilder::new("Root");
        let cust = root.id_var("cust_id", customers);
        let status = root.data_var("status");
        root.art_relation_like("ORDERS", &[cust, status]);
        root.service_parts(
            "init",
            Condition::True,
            Condition::eq(Term::var(status), Term::str("Init")),
            vec![],
            None,
        );
        let spec = SpecBuilder::new("expr-test", db, root.build())
            .build()
            .unwrap();
        (spec, credit, customers)
    }

    #[test]
    fn universe_contains_variables_constants_slots_and_navigations() {
        let (spec, credit, customers) = spec();
        let constants = BTreeSet::from([DataValue::str("Init")]);
        let u = ExprUniverse::build(&spec, spec.root(), &[VarType::Id(customers)], &constants);
        // null + 1 constant + 2 task vars + 1 global + 2 slots, plus
        // navigations: cust_id.{name,record,record.status} (3), global same
        // (3), ORDERS slot 0 same (3).
        assert_eq!(u.len(), 1 + 1 + 2 + 1 + 2 + 3 * 3);
        let cust = u
            .var_expr(VarRef::Task(VarId::new(0)))
            .expect("cust_id expression");
        assert_eq!(u.expr(cust).sort, ExprSort::Id(customers));
        // cust_id.record.status exists and is data-sorted.
        let record = u.navigate(cust, AttrId::new(1)).unwrap();
        assert_eq!(u.expr(record).sort, ExprSort::Id(credit));
        let status = u.navigate(record, AttrId::new(0)).unwrap();
        assert_eq!(u.expr(status).sort, ExprSort::Data);
        assert!(u.navigate(status, AttrId::new(0)).is_none());
        // The constant and null exist.
        assert!(u.const_expr(&DataValue::str("Init")).is_some());
        assert!(u.const_expr(&DataValue::str("Other")).is_none());
        assert_eq!(u.expr(u.null_expr()).sort, ExprSort::Null);
    }

    #[test]
    fn rebase_maps_variable_navigations_to_slot_navigations() {
        let (spec, _, customers) = spec();
        let u = ExprUniverse::build(&spec, spec.root(), &[], &BTreeSet::new());
        let cust_var = VarRef::Task(VarId::new(0));
        let cust = u.var_expr(cust_var).unwrap();
        let record = u.navigate(cust, AttrId::new(1)).unwrap();
        let slot_head = ExprHead::Slot(ArtRelId::new(0), 0);
        let rebased = u
            .rebase(record, &ExprHead::Var(cust_var), &slot_head)
            .unwrap();
        let slot_root = u.slot_expr(ArtRelId::new(0), 0).unwrap();
        assert_eq!(u.expr(rebased).parent.unwrap().0, slot_root);
        assert_eq!(u.expr(rebased).sort, u.expr(record).sort);
        // Rebasing an expression with a different head returns None.
        assert!(u
            .rebase(
                record,
                &ExprHead::Var(VarRef::Task(VarId::new(1))),
                &slot_head
            )
            .is_none());
        let _ = customers;
    }

    #[test]
    fn headed_by_filters_by_head() {
        let (spec, _, _) = spec();
        let u = ExprUniverse::build(&spec, spec.root(), &[], &BTreeSet::new());
        let status_var = VarRef::Task(VarId::new(1));
        let headed = u.headed_by(|h| *h == ExprHead::Var(status_var));
        assert_eq!(headed.len(), 1); // data variable: no navigations
        let cust_var = VarRef::Task(VarId::new(0));
        let headed = u.headed_by(|h| *h == ExprHead::Var(cust_var));
        assert_eq!(headed.len(), 4); // cust_id, .name, .record, .record.status
    }

    #[test]
    fn display_renders_navigation_paths() {
        let (spec, _, _) = spec();
        let u = ExprUniverse::build(&spec, spec.root(), &[], &BTreeSet::new());
        let cust = u.var_expr(VarRef::Task(VarId::new(0))).unwrap();
        let record = u.navigate(cust, AttrId::new(1)).unwrap();
        let status = u.navigate(record, AttrId::new(0)).unwrap();
        assert_eq!(
            u.display(&spec, spec.root(), status),
            "cust_id.record.status"
        );
        let slot = u.slot_expr(ArtRelId::new(0), 1).unwrap();
        assert_eq!(u.display(&spec, spec.root(), slot), "ORDERS[status]");
    }
}
