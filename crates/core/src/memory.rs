//! Byte-accounted memory budgeting for searches and caches.
//!
//! A long-lived verification service cannot let one pathological spec
//! OOM the process: the search state of a Karp–Miller run (nodes,
//! interned stored types, successor logs) grows with the explored tree,
//! and a server runs many of them concurrently over one heap.  This
//! module gives the server a *budget* — a shared byte pool — and each
//! search a *lease* on it:
//!
//! * [`MemoryBudget`] — a cloneable handle on a shared pool of
//!   `limit_bytes`.  Creating it costs nothing; it only tracks a
//!   counter.  All figures are deterministic *estimates* (fixed
//!   per-structure constants times element counts), never allocator
//!   probes, so a budgeted run behaves identically on every host.
//! * [`MemoryLease`] — one search's slice of the pool.  The search
//!   reports its estimated resident size at round boundaries
//!   ([`MemoryLease::resize`]); the lease holds the delta against the
//!   pool and releases everything on drop.  The first failed resize
//!   trips a sticky `exhausted` flag that the owning engine request
//!   (`Engine::run_request`) turns into a typed
//!   [`crate::error::VerifasError::ResourceExhausted`] — the search
//!   itself just stops at the next boundary, exactly like a state or
//!   time limit.
//!
//! Polling happens only at plan/apply round boundaries (`search.rs`)
//! and edge-construction wave boundaries (`repeated.rs`), the same
//! places the thread budget is re-read: the search path taken is
//! byte-identical with or without a budget installed — a budget can
//! only *truncate* a run, never steer it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared pool of accounted bytes (see the module docs).
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    limit_bytes: usize,
    used: Arc<AtomicUsize>,
}

impl MemoryBudget {
    /// A pool of `limit_bytes` (clamped to ≥ 1 so "0" cannot mean
    /// "unlimited" by accident — pass no budget at all for that).
    pub fn new(limit_bytes: usize) -> Self {
        MemoryBudget {
            limit_bytes: limit_bytes.max(1),
            used: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The pool size in bytes.
    pub fn limit_bytes(&self) -> usize {
        self.limit_bytes
    }

    /// Currently accounted bytes across every live lease.
    pub fn used_bytes(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// A fresh lease holding zero bytes.
    pub fn lease(&self) -> MemoryLease {
        MemoryLease {
            budget: self.clone(),
            held: AtomicUsize::new(0),
            exhausted: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// One search's slice of a [`MemoryBudget`] (see the module docs).
///
/// Interior mutability throughout: a lease is shared by `&` through
/// [`crate::observer::SearchControl`] across worker threads, but only
/// the coordinator calls [`MemoryLease::resize`] (at round boundaries),
/// so the relaxed read-modify-write cycle below is single-writer.
#[derive(Debug)]
pub struct MemoryLease {
    budget: MemoryBudget,
    held: AtomicUsize,
    exhausted: Arc<AtomicBool>,
}

impl MemoryLease {
    /// Re-account this lease at `bytes`.  Returns `false` — and trips
    /// the sticky [`MemoryLease::exhausted`] flag — when growing to
    /// `bytes` would push the pool past its limit; the failed delta is
    /// rolled back so the pool stays consistent for other leases.
    pub fn resize(&self, bytes: usize) -> bool {
        let held = self.held.load(Ordering::Relaxed);
        if bytes > held {
            let grow = bytes - held;
            let before = self.budget.used.fetch_add(grow, Ordering::Relaxed);
            if before + grow > self.budget.limit_bytes {
                self.budget.used.fetch_sub(grow, Ordering::Relaxed);
                self.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
            self.held.store(bytes, Ordering::Relaxed);
        } else {
            self.budget.used.fetch_sub(held - bytes, Ordering::Relaxed);
            self.held.store(bytes, Ordering::Relaxed);
        }
        true
    }

    /// Bytes this lease currently holds against the pool.
    pub fn held_bytes(&self) -> usize {
        self.held.load(Ordering::Relaxed)
    }

    /// The pool's limit (for error reports).
    pub fn limit_bytes(&self) -> usize {
        self.budget.limit_bytes
    }

    /// Whether any resize of this lease ever failed.  Sticky: once the
    /// budget refused a grow, the run is over-budget even if later
    /// rounds would fit again.
    pub fn exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }
}

impl Drop for MemoryLease {
    fn drop(&mut self) {
        let held = self.held.load(Ordering::Relaxed);
        self.budget.used.fetch_sub(held, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_account_against_one_pool() {
        let budget = MemoryBudget::new(1000);
        let a = budget.lease();
        let b = budget.lease();
        assert!(a.resize(400));
        assert!(b.resize(500));
        assert_eq!(budget.used_bytes(), 900);
        // Growing past the pool fails, rolls back, and trips the flag.
        assert!(!a.resize(600));
        assert_eq!(budget.used_bytes(), 900);
        assert!(a.exhausted());
        assert!(!b.exhausted());
        // Shrinking always succeeds and frees pool space.
        assert!(b.resize(100));
        assert_eq!(budget.used_bytes(), 500);
        drop(a);
        assert_eq!(budget.used_bytes(), 100);
        drop(b);
        assert_eq!(budget.used_bytes(), 0);
    }

    #[test]
    fn exhaustion_is_sticky() {
        let budget = MemoryBudget::new(10);
        let lease = budget.lease();
        assert!(!lease.resize(100));
        // A later resize that fits does not clear the verdict.
        assert!(lease.resize(5));
        assert!(lease.exhausted());
    }
}
