//! Process-wide construction and reuse counters for the expensive
//! spec-side artefacts.
//!
//! [`crate::engine::Engine::check_all`] promises to build the expression
//! universe and the spec-side constraint graph once per (task,
//! configuration) key and share them across the properties of a batch.
//! [`crate::engine::Engine::load_delta`] promises the stronger inverse:
//! artefacts of *unchanged* task slices are carried into the new session
//! and provably **not** rebuilt, finished reports of unchanged requests
//! are answered without a search, and (under
//! [`crate::delta::ReuseMode::Replay`]) previously enumerated
//! transitions are replayed from the [`crate::delta::TransitionMemo`]
//! instead of recomputed.  These counters make every one of those
//! promises testable — and exportable on `verifas serve`'s `/metrics`:
//!
//! * [`universe_builds`] / [`spec_graph_builds`] — construction counts of
//!   the two one-off preprocessing artefacts,
//! * [`preps_carried`] / [`reports_carried`] — cache entries moved across
//!   sessions by `Engine::load_delta`,
//! * [`reports_reused`] — verification requests answered from a carried
//!   report, with no search at all,
//! * [`memo_hits`] / [`memo_misses`] — replay-mode transition
//!   enumerations served from the memo vs computed (and recorded).
//!
//! They exist for tests and diagnostics only — nothing in the verifier
//! reads them.

use std::sync::atomic::{AtomicUsize, Ordering};

pub(crate) static UNIVERSE_BUILDS: AtomicUsize = AtomicUsize::new(0);
pub(crate) static SPEC_GRAPH_BUILDS: AtomicUsize = AtomicUsize::new(0);
pub(crate) static PREPS_CARRIED: AtomicUsize = AtomicUsize::new(0);
pub(crate) static REPORTS_CARRIED: AtomicUsize = AtomicUsize::new(0);
pub(crate) static REPORTS_REUSED: AtomicUsize = AtomicUsize::new(0);
pub(crate) static MEMO_HITS: AtomicUsize = AtomicUsize::new(0);
pub(crate) static MEMO_MISSES: AtomicUsize = AtomicUsize::new(0);

/// Number of [`crate::expr::ExprUniverse::build`] calls so far in this
/// process.
pub fn universe_builds() -> usize {
    UNIVERSE_BUILDS.load(Ordering::Relaxed)
}

/// Number of spec-side constraint-graph constructions
/// ([`crate::static_analysis::ConstraintGraph::build_spec_side`]) so far in
/// this process.
pub fn spec_graph_builds() -> usize {
    SPEC_GRAPH_BUILDS.load(Ordering::Relaxed)
}

/// Number of preprocessing cache entries carried across sessions by
/// [`crate::engine::Engine::load_delta`] (each one is a universe +
/// compiled-task + static-graph build that did **not** happen again).
pub fn preps_carried() -> usize {
    PREPS_CARRIED.load(Ordering::Relaxed)
}

/// Number of finished verification reports carried across sessions by
/// [`crate::engine::Engine::load_delta`].
pub fn reports_carried() -> usize {
    REPORTS_CARRIED.load(Ordering::Relaxed)
}

/// Number of verification requests answered from a carried report
/// without running any search.
pub fn reports_reused() -> usize {
    REPORTS_REUSED.load(Ordering::Relaxed)
}

/// Number of spec-side successor enumerations replayed from a
/// [`crate::delta::TransitionMemo`] (replay mode only).
pub fn memo_hits() -> usize {
    MEMO_HITS.load(Ordering::Relaxed)
}

/// Number of spec-side successor enumerations computed — and recorded —
/// because the memo had not seen the instance (replay mode only).
pub fn memo_misses() -> usize {
    MEMO_MISSES.load(Ordering::Relaxed)
}
