//! Process-wide construction counters for the expensive spec-side
//! preprocessing artefacts.
//!
//! [`crate::engine::Engine::check_all`] promises to build the expression
//! universe and the spec-side constraint graph once per (task,
//! configuration) key and share them across the properties of a batch.
//! These counters make that promise testable: they count every call to
//! [`crate::expr::ExprUniverse::build`] and
//! [`crate::static_analysis::ConstraintGraph::build_spec_side`] in the
//! current process.  They exist for tests and diagnostics only — nothing in
//! the verifier reads them.

use std::sync::atomic::{AtomicUsize, Ordering};

pub(crate) static UNIVERSE_BUILDS: AtomicUsize = AtomicUsize::new(0);
pub(crate) static SPEC_GRAPH_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Number of [`crate::expr::ExprUniverse::build`] calls so far in this
/// process.
pub fn universe_builds() -> usize {
    UNIVERSE_BUILDS.load(Ordering::Relaxed)
}

/// Number of spec-side constraint-graph constructions
/// ([`crate::static_analysis::ConstraintGraph::build_spec_side`]) so far in
/// this process.
pub fn spec_graph_builds() -> usize {
    SPEC_GRAPH_BUILDS.load(Ordering::Relaxed)
}
