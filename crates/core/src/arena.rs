//! Arena-backed, structure-of-arrays storage for the Karp–Miller tree.
//!
//! A million-state search keeps every node of the tree resident: the
//! pre-overhaul layout stored one heap-owned [`ProductState`] per node
//! (its own `Pit`, its own counter vector, its own children list), which
//! at that scale is both cache-hostile — every coverage test chases a
//! fresh pointer per candidate — and memory-hungry, since the same few
//! distinct types and counter vectors are cloned into thousands of
//! nodes.  This module replaces it with three arenas:
//!
//! * [`PitArena`] — deduplicated partial isomorphism types.  A node
//!   stores a `u32` id; structurally equal pits share one allocation.
//! * [`CounterArena`] — deduplicated counter vectors, flattened into one
//!   slab of `(type, count)` entries addressed by span.
//! * [`StateArena`] — the tree itself as parallel columns (pit id,
//!   counter id, child mask, automaton state, service, parent, intrusive
//!   child links, flags), so the discrete-key comparisons that gate every
//!   coverage test read small dense arrays instead of scattered nodes.
//!
//! States are *published* into the arenas only by the sequential apply
//! phase of the search (plan workers operate on owned successor states
//! against a frozen arena), so every id is assigned in deterministic
//! apply order and a parallel run stays bit-identical to a sequential
//! one.  Comparisons run on borrowed [`StateView`]s; an owned
//! [`ProductState`] is only materialised where the public API demands it
//! (traces, counterexamples, successor re-enumeration).

use crate::pit::Pit;
use crate::product::{ProductState, StateView};
use crate::psi::{CounterVec, Psi, StoredTypeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use verifas_model::ServiceRef;

/// Sentinel id for "no node" in the parent / child-link columns.
pub const NO_NODE: u32 = u32::MAX;

const FLAG_ACTIVE: u8 = 1;
const FLAG_EXPANDED: u8 = 1 << 1;
const FLAG_CLOSED: u8 = 1 << 2;

fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Deduplicating arena of partial isomorphism types.
#[derive(Debug, Default)]
pub struct PitArena {
    pits: Vec<Pit>,
    /// Hash buckets over `pits` (no second owned copy of the keys).
    buckets: HashMap<u64, Vec<u32>>,
    /// Total closed edges across all distinct pits (memory accounting).
    edge_units: usize,
}

impl PitArena {
    /// Intern a type, returning the id of its unique stored copy.
    pub fn intern(&mut self, pit: &Pit) -> u32 {
        let key = hash64(pit);
        if let Some(ids) = self.buckets.get(&key) {
            for &id in ids {
                if self.pits[id as usize] == *pit {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.pits.len()).expect("pit arena overflow");
        self.edge_units += pit.edge_count();
        self.pits.push(pit.clone());
        self.buckets.entry(key).or_default().push(id);
        id
    }

    /// The stored type under `id`.
    pub fn get(&self, id: u32) -> &Pit {
        &self.pits[id as usize]
    }

    /// Number of distinct types stored.
    pub fn len(&self) -> usize {
        self.pits.len()
    }

    /// `true` iff no type has been interned.
    pub fn is_empty(&self) -> bool {
        self.pits.is_empty()
    }

    /// Total closed edges across all distinct stored types.
    pub fn edge_units(&self) -> usize {
        self.edge_units
    }
}

/// Deduplicating arena of counter vectors, flattened into one slab.
#[derive(Debug, Default)]
pub struct CounterArena {
    slab: Vec<(StoredTypeId, u32)>,
    /// `(start, len)` span of each stored vector within the slab.
    spans: Vec<(u32, u32)>,
    /// Hash buckets over spans (no second owned copy of the entries).
    buckets: HashMap<u64, Vec<u32>>,
}

impl CounterArena {
    /// Intern a sorted entry slice, returning the id of its unique copy.
    pub fn intern(&mut self, entries: &[(StoredTypeId, u32)]) -> u32 {
        let key = hash64(entries);
        if let Some(ids) = self.buckets.get(&key) {
            for &id in ids {
                if self.get(id) == entries {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.spans.len()).expect("counter arena overflow");
        let start = u32::try_from(self.slab.len()).expect("counter slab overflow");
        self.slab.extend_from_slice(entries);
        self.spans.push((start, entries.len() as u32));
        self.buckets.entry(key).or_default().push(id);
        id
    }

    /// The entry slice stored under `id`.
    pub fn get(&self, id: u32) -> &[(StoredTypeId, u32)] {
        let (start, len) = self.spans[id as usize];
        &self.slab[start as usize..(start + len) as usize]
    }

    /// Number of distinct counter vectors stored.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` iff no vector has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total `(type, count)` entries in the slab.
    pub fn slab_len(&self) -> usize {
        self.slab.len()
    }
}

/// The Karp–Miller tree as structure-of-arrays columns over the two
/// deduplicating arenas.
#[derive(Debug, Default)]
pub struct StateArena {
    pits: PitArena,
    counters: CounterArena,
    pit: Vec<u32>,
    ctr: Vec<u32>,
    child_active: Vec<u64>,
    buchi: Vec<u32>,
    service: Vec<ServiceRef>,
    parent: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    flags: Vec<u8>,
}

impl StateArena {
    /// An empty arena.
    pub fn new() -> Self {
        StateArena::default()
    }

    /// Number of nodes stored.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// `true` iff no node has been pushed.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Publish a state as a new node: intern its type and counters, append
    /// one row (born active, unexpanded) and link it into the parent's
    /// child list.  Child links are a prepend-order intrusive list; no
    /// traversal depends on their order (subtree deactivation is
    /// set-semantics).
    pub fn push(&mut self, state: &ProductState, parent: Option<u32>, service: ServiceRef) -> u32 {
        let id = u32::try_from(self.flags.len()).expect("state arena overflow");
        self.pit.push(self.pits.intern(&state.psi.pit));
        self.ctr
            .push(self.counters.intern(state.psi.counters.as_slice()));
        self.child_active.push(state.psi.child_active);
        self.buchi
            .push(u32::try_from(state.buchi).expect("buchi state overflow"));
        self.service.push(service);
        self.parent.push(parent.unwrap_or(NO_NODE));
        self.first_child.push(NO_NODE);
        self.next_sibling.push(NO_NODE);
        self.flags
            .push(FLAG_ACTIVE | if state.closed { FLAG_CLOSED } else { 0 });
        if let Some(p) = parent {
            self.next_sibling[id as usize] = self.first_child[p as usize];
            self.first_child[p as usize] = id;
        }
        id
    }

    /// Intern a type without storing a node (compact successor logging).
    pub fn intern_pit(&mut self, pit: &Pit) -> u32 {
        self.pits.intern(pit)
    }

    /// Intern a counter slice without storing a node (compact successor
    /// logging).
    pub fn intern_counters(&mut self, entries: &[(StoredTypeId, u32)]) -> u32 {
        self.counters.intern(entries)
    }

    /// A borrowed view of the node under `id`.
    pub fn view(&self, id: u32) -> StateView<'_> {
        let i = id as usize;
        self.raw_view(
            self.pit[i],
            self.ctr[i],
            self.child_active[i],
            self.buchi[i],
            self.flags[i] & FLAG_CLOSED != 0,
        )
    }

    /// A view assembled from arena ids directly — how the compact
    /// successor log resolves entries that never became tree nodes.
    pub fn raw_view(
        &self,
        pit: u32,
        counters: u32,
        child_active: u64,
        buchi: u32,
        closed: bool,
    ) -> StateView<'_> {
        StateView {
            pit: self.pits.get(pit),
            counters: self.counters.get(counters),
            child_active,
            buchi: buchi as usize,
            closed,
        }
    }

    /// Materialise an owned [`ProductState`] for the node under `id`.
    pub fn materialize(&self, id: u32) -> ProductState {
        let view = self.view(id);
        ProductState {
            psi: Psi {
                pit: view.pit.clone(),
                counters: CounterVec::from_sorted(view.counters.to_vec()),
                child_active: view.child_active,
            },
            buchi: view.buchi,
            closed: view.closed,
        }
    }

    /// The discrete comparison key of the node (automaton state, child
    /// mask, closed flag) — read from the dense columns, no type access.
    pub fn discrete_key(&self, id: u32) -> (usize, u64, bool) {
        let i = id as usize;
        (
            self.buchi[i] as usize,
            self.child_active[i],
            self.flags[i] & FLAG_CLOSED != 0,
        )
    }

    /// Is the node active (not pruned)?
    pub fn is_active(&self, id: u32) -> bool {
        self.flags[id as usize] & FLAG_ACTIVE != 0
    }

    /// Activate / deactivate the node.
    pub fn set_active(&mut self, id: u32, active: bool) {
        if active {
            self.flags[id as usize] |= FLAG_ACTIVE;
        } else {
            self.flags[id as usize] &= !FLAG_ACTIVE;
        }
    }

    /// Has the apply phase replayed this node's successors?
    pub fn is_expanded(&self, id: u32) -> bool {
        self.flags[id as usize] & FLAG_EXPANDED != 0
    }

    /// Mark the node expanded.
    pub fn mark_expanded(&mut self, id: u32) {
        self.flags[id as usize] |= FLAG_EXPANDED;
    }

    /// The parent id, if any.
    pub fn parent(&self, id: u32) -> Option<u32> {
        match self.parent[id as usize] {
            NO_NODE => None,
            p => Some(p),
        }
    }

    /// The observable service that produced the node.
    pub fn service(&self, id: u32) -> ServiceRef {
        self.service[id as usize]
    }

    /// The node's children (prepend order).
    pub fn children(&self, id: u32) -> ChildIter<'_> {
        ChildIter {
            arena: self,
            next: self.first_child[id as usize],
        }
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.flags.iter().filter(|f| **f & FLAG_ACTIVE != 0).count()
    }

    /// Deterministic estimate of the arena's resident bytes: fixed
    /// per-element costs times the actual occupancy of the columns and the
    /// two deduplicating arenas — never an allocator probe, so a
    /// memory-budgeted run takes the same rounds on every host.
    pub fn estimated_bytes(&self) -> usize {
        // One SoA row: 4+4+8+4+4+4+4+1 column bytes, the service ref, and
        // a share of index/group bookkeeping.
        const ROW_BYTES: usize = 56;
        // One distinct pit: Vec header + bucket entry.
        const PIT_BASE_BYTES: usize = 64;
        // One packed pit edge plus its share of hash overhead.
        const PIT_EDGE_BYTES: usize = 16;
        // One slab entry; spans and buckets amortised per vector below.
        const COUNTER_ENTRY_BYTES: usize = 8;
        const COUNTER_SPAN_BYTES: usize = 16;
        self.flags.len() * ROW_BYTES
            + self.pits.len() * PIT_BASE_BYTES
            + self.pits.edge_units() * PIT_EDGE_BYTES
            + self.counters.slab_len() * COUNTER_ENTRY_BYTES
            + self.counters.len() * COUNTER_SPAN_BYTES
    }
}

/// Iterator over a node's children through the intrusive sibling links.
pub struct ChildIter<'a> {
    arena: &'a StateArena,
    next: u32,
}

impl Iterator for ChildIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self.next {
            NO_NODE => None,
            id => {
                self.next = self.arena.next_sibling[id as usize];
                Some(id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_model::TaskId;

    fn svc() -> ServiceRef {
        ServiceRef::Opening(TaskId::new(0))
    }

    fn state(child_active: u64, buchi: usize, closed: bool) -> ProductState {
        ProductState {
            psi: Psi {
                pit: Pit::empty(),
                counters: CounterVec::empty(),
                child_active,
            },
            buchi,
            closed,
        }
    }

    #[test]
    fn pits_and_counters_deduplicate() {
        let mut arena = StateArena::new();
        let a = arena.push(&state(0, 0, false), None, svc());
        let b = arena.push(&state(1, 0, false), Some(a), svc());
        let c = arena.push(&state(0, 0, false), Some(a), svc());
        assert_eq!(arena.len(), 3);
        // All three share the empty pit and the empty counter vector.
        assert_eq!(arena.pits.len(), 1);
        assert_eq!(arena.counters.len(), 1);
        assert_eq!(arena.view(b).child_active, 1);
        assert_eq!(arena.view(c).child_active, 0);
    }

    #[test]
    fn materialize_round_trips() {
        let mut arena = StateArena::new();
        let original = state(5, 2, true);
        let id = arena.push(&original, None, svc());
        assert_eq!(arena.materialize(id), original);
        assert_eq!(arena.discrete_key(id), (2, 5, true));
    }

    #[test]
    fn child_links_and_flags() {
        let mut arena = StateArena::new();
        let root = arena.push(&state(0, 0, false), None, svc());
        let kids: Vec<u32> = (0..3)
            .map(|i| arena.push(&state(i, 0, false), Some(root), svc()))
            .collect();
        let mut seen: Vec<u32> = arena.children(root).collect();
        seen.sort_unstable();
        assert_eq!(seen, kids);
        assert!(arena.is_active(kids[1]));
        arena.set_active(kids[1], false);
        assert!(!arena.is_active(kids[1]));
        assert!(!arena.is_expanded(root));
        arena.mark_expanded(root);
        assert!(arena.is_expanded(root));
        assert_eq!(arena.parent(kids[0]), Some(root));
        assert_eq!(arena.parent(root), None);
    }

    #[test]
    fn estimated_bytes_tracks_occupancy() {
        let mut arena = StateArena::new();
        let before = arena.estimated_bytes();
        arena.push(&state(0, 0, false), None, svc());
        let after = arena.estimated_bytes();
        assert!(after > before);
        // A duplicate state only grows by one row — its pit and counters
        // deduplicate — so the second delta is strictly smaller.
        arena.push(&state(0, 0, false), None, svc());
        let second = arena.estimated_bytes();
        assert!(second > after);
        assert!(second - after < after - before);
    }
}
