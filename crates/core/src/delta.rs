//! Incremental re-verification on spec deltas.
//!
//! The paper's pitch is *interactive* verification: a designer edits a
//! workflow, re-checks, edits again.  Rebuilding every artefact from
//! scratch on each edit throws away almost all of the previous session's
//! work — the expression universe, the compiled symbolic task, the static
//! analysis, the finished searches.  This module is the IVM-style answer
//! (never recompute what did not change):
//!
//! * [`SpecDelta`] — a structural diff between two lowered
//!   [`HasSpec`]s, computed from per-task *slice hashes* (see
//!   [`slice_hash`]).  A task's slice covers everything its compiled
//!   artefacts can observe: its own definition, its whole subtree, the
//!   database schema, the specification constants and (for the root) the
//!   global pre-condition.  Two equal slices therefore guarantee that the
//!   expression universe, the compiled [`crate::transition::SymbolicTask`]
//!   and the spec-side constraint graph are bit-identical — which is what
//!   lets `Engine::load_delta` carry them over instead of rebuilding.
//! * [`ReuseMode`] — how much a delta-loaded engine may reuse:
//!   [`ReuseMode::Cold`] (nothing), [`ReuseMode::Preproc`] (carried
//!   preprocessing + prior [`crate::report::VerificationReport`]s for
//!   unchanged (task slice, property, options) keys) or
//!   [`ReuseMode::Replay`] (additionally replay the prior searches'
//!   enumerated transitions through a [`TransitionMemo`]).
//! * [`TransitionMemo`] — the session-lifetime generalisation of the
//!   search's per-run transition log: every spec-side `succ(I)`
//!   enumeration is recorded, keyed by the *resolved* instance (the type,
//!   the child-activation mask and the stored-tuple types backing the
//!   counters — counter *values* provably do not affect which successors
//!   exist, only the successor counters, which are recomputed on replay).
//!   A re-verification after an edit replays every enumeration whose key
//!   it reaches again and recomputes only instances the previous runs
//!   never saw — "revalidate only subtrees whose enumerated successors
//!   could have changed".  Replay is bit-identical to a cold enumeration
//!   by construction: the recorded successors *are* the cold successors,
//!   including the order and side effects of stored-type interning
//!   (cross-checked against cold runs in `tests/incremental.rs`).
//!
//! Reuse is observable through [`crate::counters`] (carried
//! preprocessings, reused reports, memo hits/misses) so tests — and the
//! `/metrics` endpoint of `verifas serve` — can assert that unchanged
//! work was provably not redone.

use crate::pit::{Edge, Pit};
use crate::psi::{InternTypes, Psi, StoredTypeId};
use crate::transition::{spec_constants, SymbolicTask};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use verifas_model::{ArtRelId, HasSpec, ServiceRef, TaskId};

/// How much a delta-loaded engine reuses from its predecessor session
/// (see `Engine::load_delta`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReuseMode {
    /// No reuse: behave exactly like a freshly loaded engine.
    Cold,
    /// Carry the spec-side preprocessing of unchanged task slices and
    /// answer unchanged (task, property, options) requests from the prior
    /// session's reports.
    #[default]
    Preproc,
    /// [`ReuseMode::Preproc`] plus transition-level replay: record every
    /// spec-side successor enumeration in a [`TransitionMemo`] and replay
    /// it — instead of recomputing it — whenever a later search reaches
    /// the same resolved instance again.
    Replay,
}

impl ReuseMode {
    /// The wire/CLI name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            ReuseMode::Cold => "cold",
            ReuseMode::Preproc => "preproc",
            ReuseMode::Replay => "replay",
        }
    }

    /// Parse a wire/CLI name.
    pub fn from_name(name: &str) -> Option<ReuseMode> {
        match name {
            "cold" => Some(ReuseMode::Cold),
            "preproc" => Some(ReuseMode::Preproc),
            "replay" => Some(ReuseMode::Replay),
            _ => None,
        }
    }
}

impl fmt::Display for ReuseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// FNV-1a over the canonical `Debug` rendering of a value — the same
/// canonical-structural-hash idiom as [`crate::engine::spec_hash`].
/// Equal structures render (and therefore hash) equally; stable for one
/// build of the library, which is the lifetime of every in-memory cache
/// keyed by it.
pub fn fingerprint<T: fmt::Debug + ?Sized>(value: &T) -> u64 {
    use std::fmt::Write;
    struct Fnv(u64);
    impl Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for byte in s.bytes() {
                self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Ok(())
        }
    }
    let mut fnv = Fnv(0xcbf2_9ce4_8422_2325);
    write!(fnv, "{value:?}").expect("writing to a hasher cannot fail");
    fnv.0
}

/// The slice hash of one task: a fingerprint of *everything the task's
/// compiled verification artefacts can observe*.  Two specs whose task
/// `T` has equal slice hashes produce bit-identical expression universes,
/// compiled symbolic tasks and spec-side constraint graphs for `T`:
///
/// * the task's own definition (variables, services with their pre/post
///   conditions, artifact relations, opening/closing guards) and its id,
/// * the full definition and id of every descendant (their opening
///   guards and closing output maps are compiled into the parent's
///   transition system; ids appear in [`verifas_model::ServiceRef`]s),
/// * the database schema (expression universes navigate it),
/// * the specification constants (every universe contains all of them,
///   wherever in the spec they occur — see
///   [`crate::transition::spec_constants`]),
/// * the spec name (it is embedded in every report), and
/// * for the root task, the global pre-condition (compiled into the
///   initial instances; for other tasks only its constants matter and
///   those are already covered).
pub fn slice_hash(spec: &HasSpec, task: TaskId) -> u64 {
    let mut rendering = format!("{:?};{:?};{:?}", spec.name, task, spec.task(task));
    let mut descendants = spec.descendants(task);
    descendants.sort();
    for d in descendants {
        rendering.push_str(&format!(";{:?}={:?}", d, spec.task(d)));
    }
    rendering.push_str(&format!(";db={:?}", spec.db));
    rendering.push_str(&format!(";consts={:?}", spec_constants(spec)));
    if task == spec.root() {
        rendering.push_str(&format!(";global_pre={:?}", spec.global_pre));
    }
    fingerprint(rendering.as_str())
}

/// The per-task entry of a [`SpecDelta`]: which facets of the task
/// definition changed, and whether its whole *slice* (the reuse unit —
/// see [`slice_hash`]) is untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDelta {
    /// The task's name in the new specification.
    pub name: String,
    /// `true` iff the task exists in the new spec but not (at this id,
    /// with this name) in the old one.
    pub added: bool,
    /// Task-local schema changed: variables, input/output variables or
    /// artifact relations.
    pub schema_changed: bool,
    /// Internal services changed (including any pre/post condition).
    pub services_changed: bool,
    /// Opening or closing guard changed.
    pub guards_changed: bool,
    /// Some descendant task changed (or the descendant set itself did).
    pub subtree_changed: bool,
    /// `true` iff the task's whole slice hash is unchanged — the
    /// condition under which its preprocessing and reports carry over.
    pub unchanged: bool,
}

/// A structural diff between two lowered specifications, computed by
/// [`SpecDelta::diff`].  Indexed by the *new* specification's task ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecDelta {
    /// Per-task deltas, indexed by the new spec's [`TaskId`]s.
    pub tasks: Vec<TaskDelta>,
    /// Tasks of the old spec with no counterpart (same id, same name) in
    /// the new one.
    pub removed_tasks: usize,
    /// The database schema changed.
    pub schema_changed: bool,
    /// The global pre-condition changed.
    pub global_pre_changed: bool,
    /// The specification was renamed.
    pub renamed: bool,
}

impl SpecDelta {
    /// Diff `new` against `old`.
    pub fn diff(old: &HasSpec, new: &HasSpec) -> SpecDelta {
        let mut tasks = Vec::with_capacity(new.tasks.len());
        for (id, task) in new.iter_tasks() {
            let old_task = old
                .tasks
                .get(id.index())
                .filter(|t| t.name == task.name && t.parent == task.parent);
            let entry = match old_task {
                None => TaskDelta {
                    name: task.name.clone(),
                    added: true,
                    schema_changed: true,
                    services_changed: true,
                    guards_changed: true,
                    subtree_changed: true,
                    unchanged: false,
                },
                Some(o) => TaskDelta {
                    name: task.name.clone(),
                    added: false,
                    schema_changed: fingerprint(&(
                        &task.vars,
                        &task.input_vars,
                        &task.output_vars,
                        &task.art_relations,
                    )) != fingerprint(&(
                        &o.vars,
                        &o.input_vars,
                        &o.output_vars,
                        &o.art_relations,
                    )),
                    services_changed: fingerprint(&task.services) != fingerprint(&o.services),
                    guards_changed: fingerprint(&(&task.opening, &task.closing))
                        != fingerprint(&(&o.opening, &o.closing)),
                    subtree_changed: {
                        let mut nd = new.descendants(id);
                        let mut od = old.descendants(id);
                        nd.sort();
                        od.sort();
                        nd != od
                            || nd
                                .iter()
                                .any(|&d| fingerprint(new.task(d)) != fingerprint(old.task(d)))
                    },
                    unchanged: slice_hash(new, id) == slice_hash(old, id),
                },
            };
            tasks.push(entry);
        }
        let matched = tasks.iter().filter(|t| !t.added).count();
        SpecDelta {
            tasks,
            removed_tasks: old.tasks.len().saturating_sub(matched),
            schema_changed: fingerprint(&new.db) != fingerprint(&old.db),
            global_pre_changed: fingerprint(&new.global_pre) != fingerprint(&old.global_pre),
            renamed: new.name != old.name,
        }
    }

    /// `true` iff `task` (a new-spec id) has an unchanged slice, so its
    /// preprocessing and prior reports are valid verbatim.
    pub fn task_unchanged(&self, task: TaskId) -> bool {
        self.tasks.get(task.index()).is_some_and(|t| t.unchanged)
    }

    /// Number of tasks with unchanged slices.
    pub fn unchanged_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.unchanged).count()
    }

    /// `true` iff the prior session is worth upgrading from: at least one
    /// task slice survives the edit.  `verifas serve` uses this to pick a
    /// delta-compatible base among its cached sessions instead of
    /// requiring exact spec-hash equality.
    pub fn compatible(&self) -> bool {
        self.unchanged_tasks() > 0
    }
}

/// What `Engine::load_delta` reused from the prior session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaSummary {
    /// The reuse mode of the new engine.
    pub mode: ReuseMode,
    /// Tasks in the new specification.
    pub tasks: usize,
    /// Tasks whose slice (and therefore preprocessing) is unchanged.
    pub tasks_unchanged: usize,
    /// Preprocessing cache entries carried over (not rebuilt).
    pub preps_carried: usize,
    /// Finished verification reports carried over.
    pub reports_carried: usize,
}

/// Order-independent fingerprint of the static-analysis result: the memo
/// of a task is scoped per *removed-edge set* because
/// [`SymbolicTask::successors`] reads it while enumerating (the set is
/// property-dependent).
pub(crate) fn static_removed_fingerprint(removed: &std::collections::HashSet<Edge>) -> u64 {
    let mut edges: Vec<Edge> = removed.iter().copied().collect();
    edges.sort();
    fingerprint(&edges)
}

/// How one recorded successor's counters relate to its source instance.
/// Counter *values* are recomputed on replay from the live instance, so a
/// recorded enumeration applies to every instance with the same resolved
/// support — including ω-accelerated variants the recording run never saw.
#[derive(Debug, Clone)]
enum CounterOp {
    /// Counters unchanged (also covers insertions into and retrievals
    /// from an ω counter, which leave the vector bitwise intact; in the
    /// insertion case the interned type is then necessarily already
    /// shared, so skipping the intern call is side-effect-free).
    Same,
    /// An insertion: intern the stored type and increment its counter.
    /// Replaying the intern call reproduces the recording run's interner
    /// side effects (provisional-id allocation, per-node new-type lists)
    /// exactly, which the deterministic publication order depends on.
    Insert(ArtRelId, Pit),
    /// A retrieval: decrement the counter at this position of the source
    /// instance's (id-ordered) counter support.
    Decrement(usize),
}

/// One recorded spec-side successor.
#[derive(Debug, Clone)]
struct MemoSuccessor {
    service: ServiceRef,
    pit: Pit,
    child_active: u64,
    op: CounterOp,
}

/// The key of one recorded enumeration: the *resolved* partial symbolic
/// instance.  Counter ids are search-local, so the key stores the stored
/// types themselves (in counter-iteration order — the enumeration order
/// of retrieval successors follows it).  Finite counter *values* are
/// deliberately excluded (see [`CounterOp`]), but each entry's ω-ness is
/// part of the key: the recorded op for an insertion into (or retrieval
/// from) an ω counter is [`CounterOp::Same`], which is only exact for
/// instances that are ω at the same position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    pit: Pit,
    child_active: u64,
    support: Vec<(ArtRelId, Pit, bool)>,
}

/// A recorded enumeration map for one (task preprocessing, removed-edge
/// set) pair.  Shared by every search of the session (and, through
/// `Engine::load_delta`, by later sessions whose task slice is
/// unchanged); concurrent lookups from parallel plan workers take the
/// read lock.
pub struct MemoScope {
    map: RwLock<HashMap<MemoKey, Arc<Vec<MemoSuccessor>>>>,
}

/// Recorded enumerations beyond this many keys are discarded instead of
/// stored (the memo is a pure cache; a runaway search must not hold the
/// whole state space in it twice).
const MEMO_SCOPE_CAPACITY: usize = 1 << 20;

impl MemoScope {
    fn new() -> Self {
        MemoScope {
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Number of recorded enumerations.
    pub fn len(&self) -> usize {
        read_ignoring_poison(&self.map).len()
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spec-side successor enumeration of `psi`, replayed from the
    /// memo when this resolved instance was enumerated before, computed
    /// (and recorded) by `task` otherwise.  Bit-identical to
    /// [`SymbolicTask::successors`] in both results and interner side
    /// effects.
    pub(crate) fn successors(
        &self,
        task: &SymbolicTask,
        psi: &Psi,
        interner: &mut dyn InternTypes,
    ) -> Vec<(ServiceRef, Psi)> {
        let ids: Vec<StoredTypeId> = psi.counters.iter().map(|(t, _)| t).collect();
        let support: Vec<(ArtRelId, Pit, bool)> = psi
            .counters
            .iter()
            .map(|(t, c)| {
                let (rel, pit) = interner.get(t).clone();
                (rel, pit, c == crate::psi::OMEGA)
            })
            .collect();
        let key = MemoKey {
            pit: psi.pit.clone(),
            child_active: psi.child_active,
            support,
        };
        let recorded = read_ignoring_poison(&self.map).get(&key).cloned();
        if let Some(recorded) = recorded {
            crate::counters::MEMO_HITS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return recorded
                .iter()
                .map(|m| {
                    let counters = match &m.op {
                        CounterOp::Same => psi.counters.clone(),
                        CounterOp::Insert(rel, pit) => {
                            let id = interner.intern(*rel, pit.clone());
                            psi.counters.incremented(id)
                        }
                        CounterOp::Decrement(pos) => psi
                            .counters
                            .decremented(ids[*pos])
                            .expect("recorded retrieval position has a positive count"),
                    };
                    (
                        m.service,
                        Psi {
                            pit: m.pit.clone(),
                            counters,
                            child_active: m.child_active,
                        },
                    )
                })
                .collect();
        }
        crate::counters::MEMO_MISSES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let succs = task.successors(psi, interner);
        let recorded: Vec<MemoSuccessor> = succs
            .iter()
            .map(|(service, s)| MemoSuccessor {
                service: *service,
                pit: s.pit.clone(),
                child_active: s.child_active,
                op: diff_counters(psi, s, &ids, interner),
            })
            .collect();
        let mut map = write_ignoring_poison(&self.map);
        if map.len() < MEMO_SCOPE_CAPACITY {
            map.insert(key, Arc::new(recorded));
        }
        succs
    }
}

impl fmt::Debug for MemoScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoScope")
            .field("entries", &self.len())
            .finish()
    }
}

/// Reconstruct the counter operation of one successor by diffing its
/// counter vector against the source's.  At most one counter changes per
/// service application; a bitwise-equal vector replays as
/// [`CounterOp::Same`] (see there for why that is exact even for ω
/// insertions).
fn diff_counters(
    source: &Psi,
    succ: &Psi,
    source_ids: &[StoredTypeId],
    interner: &dyn crate::psi::TypeTable,
) -> CounterOp {
    if succ.counters == source.counters {
        return CounterOp::Same;
    }
    // Exactly one id's count moved: up by one (insert) or down (retrieve).
    for (id, count) in succ.counters.iter() {
        if count > source.counters.get(id) {
            let (rel, pit) = interner.get(id).clone();
            return CounterOp::Insert(rel, pit);
        }
    }
    for (pos, &id) in source_ids.iter().enumerate() {
        if succ.counters.get(id) < source.counters.get(id) {
            return CounterOp::Decrement(pos);
        }
    }
    unreachable!("successor counters differ from the source but no entry moved")
}

/// The transition memo of one task preprocessing: recorded spec-side
/// enumerations, scoped per static-analysis removed-edge fingerprint
/// (the removed set is property-dependent and read during enumeration).
#[derive(Default)]
pub struct TransitionMemo {
    scopes: Mutex<HashMap<u64, Arc<MemoScope>>>,
}

impl TransitionMemo {
    /// A fresh, empty memo.
    pub fn new() -> Self {
        TransitionMemo::default()
    }

    /// The scope for one removed-edge fingerprint (created on first use).
    pub(crate) fn scope(&self, static_removed_fp: u64) -> Arc<MemoScope> {
        let mut scopes = self
            .scopes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(
            scopes
                .entry(static_removed_fp)
                .or_insert_with(|| Arc::new(MemoScope::new())),
        )
    }

    /// Total recorded enumerations across all scopes (diagnostic).
    pub fn len(&self) -> usize {
        let scopes = self
            .scopes
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        scopes.values().map(|s| s.len()).sum()
    }

    /// `true` iff nothing has been recorded in any scope.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for TransitionMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionMemo")
            .field("entries", &self.len())
            .finish()
    }
}

fn read_ignoring_poison<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write_ignoring_poison<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_model::schema::attr::data;
    use verifas_model::{Condition, DatabaseSchema, SpecBuilder, TaskBuilder, Term};

    fn two_task_spec(child_value: &str) -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        // Receives the child's output by same-name wiring.
        let _result = root.data_var("result");
        root.service_parts(
            "go",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("delta", db, root.build());
        let mut child = TaskBuilder::new("Child");
        let r = child.data_var("result");
        child.outputs([r]);
        child.opening_pre(Condition::True);
        child.closing_pre(Condition::eq(Term::var(r), Term::str(child_value)));
        b.add_child("Root", child.build()).unwrap();
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    #[test]
    fn identical_specs_diff_as_fully_unchanged() {
        let spec = two_task_spec("Ok");
        let delta = SpecDelta::diff(&spec, &spec.clone());
        assert_eq!(delta.tasks.len(), 2);
        assert!(delta.tasks.iter().all(|t| t.unchanged && !t.added));
        assert_eq!(delta.unchanged_tasks(), 2);
        assert_eq!(delta.removed_tasks, 0);
        assert!(!delta.schema_changed);
        assert!(!delta.global_pre_changed);
        assert!(!delta.renamed);
        assert!(delta.compatible());
    }

    #[test]
    fn a_child_edit_invalidates_the_ancestors_but_not_unrelated_facets() {
        let old = two_task_spec("Ok");
        let new = two_task_spec("Changed");
        let delta = SpecDelta::diff(&old, &new);
        // The child's own guard changed, and the root's slice includes
        // its subtree, so nothing is reusable...
        let root = &delta.tasks[0];
        assert!(!root.unchanged);
        assert!(root.subtree_changed);
        // ...but the root's local facets are untouched.
        assert!(!root.schema_changed);
        assert!(!root.services_changed);
        assert!(!root.guards_changed);
        let child = &delta.tasks[1];
        assert!(!child.unchanged);
        assert!(child.guards_changed);
        assert!(!child.services_changed);
        // The constant "Changed" enters the spec constants, which every
        // slice observes — so incompatibility is expected here.
        assert!(!delta.compatible());
    }

    #[test]
    fn a_root_service_edit_leaves_the_child_slice_intact() {
        let old = two_task_spec("Ok");
        let mut new = two_task_spec("Ok");
        // Widen the root's post-condition without introducing or dropping
        // any constant, so the shared constant set stays stable.
        new.tasks[0].services[0].post = Condition::or([
            Condition::eq(Term::var(verifas_model::VarId::new(0)), Term::str("Done")),
            Condition::eq(Term::var(verifas_model::VarId::new(0)), Term::str("Ok")),
        ]);
        let delta = SpecDelta::diff(&old, &new);
        assert!(delta.tasks[0].services_changed);
        assert!(!delta.tasks[0].unchanged);
        assert!(delta.tasks[1].unchanged, "child slice must survive");
        assert!(delta.compatible());
        assert!(delta.task_unchanged(TaskId::new(1)));
        assert!(!delta.task_unchanged(TaskId::new(0)));
    }

    #[test]
    fn renames_and_schema_edits_are_reported() {
        let old = two_task_spec("Ok");
        let mut renamed = old.clone();
        renamed.name = "delta2".to_owned();
        let delta = SpecDelta::diff(&old, &renamed);
        assert!(delta.renamed);
        // The spec name is part of every slice (reports embed it).
        assert_eq!(delta.unchanged_tasks(), 0);

        let mut reschema = old.clone();
        reschema.db.add_relation("S", vec![data("b")]).unwrap();
        let delta = SpecDelta::diff(&old, &reschema);
        assert!(delta.schema_changed);
        assert_eq!(delta.unchanged_tasks(), 0);
    }

    #[test]
    fn added_and_removed_tasks_are_counted() {
        let one = {
            let mut db = DatabaseSchema::new();
            db.add_relation("R", vec![data("a")]).unwrap();
            let mut root = TaskBuilder::new("Root");
            let _ = root.data_var("status");
            SpecBuilder::new("delta", db, root.build()).build().unwrap()
        };
        let two = two_task_spec("Ok");
        let grown = SpecDelta::diff(&one, &two);
        assert!(grown.tasks[1].added);
        assert_eq!(grown.removed_tasks, 0);
        let shrunk = SpecDelta::diff(&two, &one);
        assert_eq!(shrunk.removed_tasks, 1);
    }

    #[test]
    fn fingerprints_are_stable_and_structural() {
        let spec = two_task_spec("Ok");
        assert_eq!(fingerprint(&spec), fingerprint(&spec.clone()));
        assert_eq!(
            slice_hash(&spec, spec.root()),
            slice_hash(&spec.clone(), spec.root())
        );
        assert_ne!(
            slice_hash(&spec, TaskId::new(0)),
            slice_hash(&spec, TaskId::new(1))
        );
    }
}
