//! The Karp–Miller search over partial symbolic instances (Algorithm 1)
//! with ω-acceleration (Section 3.3), monotone pruning (Section 3.4, after
//! Reynier–Servais) and the ≼-based aggressive pruning (Section 3.5),
//! optionally filtered through the inverted-list index (Section 3.6).
//!
//! The search explores the product of the symbolic transition system with
//! the violation automaton.  It stops immediately when a *finite* violating
//! local run is found (the task closes in a padding-accepting automaton
//! state); otherwise it computes a coverability-style set of active states
//! which the repeated-reachability analysis ([`crate::repeated`]) then uses
//! to look for *infinite* violations.
//!
//! # State storage
//!
//! The tree lives in an arena-backed structure-of-arrays layout
//! ([`crate::arena::StateArena`]): nodes are dense `u32`-indexed rows over
//! deduplicating type and counter arenas, compared through borrowed
//! [`StateView`]s.  Coverage and prune candidates are discovered three
//! ways, all bit-identical:
//!
//! * with the inverted-list index ([`KarpMillerSearch::use_index`]),
//!   through signature subset/superset posting queries;
//! * without the index, through per-discrete-group candidate vectors
//!   (active arena ids in ascending order, one vector per `(automaton
//!   state, child mask, closed)` key) — since every coverage relation
//!   requires equal discrete keys, scanning the group in id order visits
//!   exactly the states a full linear scan would have accepted, in the
//!   same order;
//! * with [`KarpMillerSearch::reference_layout`] set, through the
//!   pre-overhaul full linear scans over the node table — kept as a
//!   differential oracle and as the denominator of the `state_layout`
//!   benchmark.
//!
//! # Parallel execution
//!
//! With [`KarpMillerSearch::threads`] > 1 the search runs as a sequence of
//! *rounds* over the frontier:
//!
//! 1. **Plan phase (parallel).**  A pool of workers claims chunks of the
//!    frontier from a shared cursor (work-stealing style) and, against a
//!    frozen snapshot of the tree, computes for every frontier node its
//!    product successors, speculative ω-accelerations against the node's
//!    active ancestors, a speculative covered-by-active test and the list
//!    of active states the successor would prune.  Workers intern unknown
//!    stored types into per-worker [`WorkerInterner`] caches under
//!    provisional ids.
//! 2. **Apply phase (sequential, deterministic).**  The coordinating
//!    thread replays the plans in frontier order: it publishes each node's
//!    new stored types to the shared interner (in first-intern order, so
//!    the final numbering matches a sequential run exactly), publishes the
//!    surviving successor states into the shared arena, validates the
//!    speculations against what earlier applications of this round changed
//!    (an ancestor deactivated → the acceleration is recomputed; a
//!    covering state deactivated → the coverage test is recomputed; states
//!    added this round are always re-checked), and mutates the tree.
//!
//! Because every speculation is either proven still-valid or recomputed
//! from the live tree, a parallel run produces *bit-identical* results to
//! a sequential one: the same tree, the same statistics, the same verdict
//! and the same witness.  Only wall-clock timing and the per-worker
//! [`WorkerStats`] depend on scheduling.
//!
//! Since a round is bit-identical for *every* worker count, the pool may
//! also be resized **between** rounds without changing the result: when a
//! [`crate::schedule::ThreadBudget`] is installed on the run's
//! [`SearchControl`], the search re-polls it at each round boundary, which
//! is how the batch [`crate::schedule::Scheduler`] hands cores freed by
//! finished properties to still-running searches mid-flight.

use crate::arena::StateArena;
use crate::coverage::{accelerate, covers, CoverageKind};
use crate::index::StateIndex;
use crate::observer::{ProgressEvent, SearchControl};
use crate::pit::Pit;
use crate::product::{ProductState, ProductSystem, StateView};
use crate::psi::{
    is_provisional, provisional_parts, CounterVec, StoredTypeId, StoredTypeInterner, TypeTable,
    WorkerInterner,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use verifas_model::{ArtRelId, ServiceRef};

/// Resource limits of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of tree nodes created before giving up.
    pub max_states: usize,
    /// Wall-clock budget in milliseconds.
    pub max_millis: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_states: 100_000,
            max_millis: 60_000,
        }
    }
}

/// Statistics of one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes created in the Karp–Miller tree.
    pub states_created: usize,
    /// Nodes still active (the coverability set candidates) at the end.
    pub states_active: usize,
    /// New states discarded because an active state already covered them.
    pub states_skipped: usize,
    /// Active states deactivated by the monotone pruning.
    pub states_pruned: usize,
    /// Number of ω-accelerations applied.
    pub accelerations: usize,
    /// Stored tuple types interned.
    pub stored_types: usize,
    /// Elapsed wall-clock time in milliseconds.
    pub elapsed_ms: u64,
    /// Number of search workers this run was configured with (1 for a
    /// sequential run).
    pub threads: usize,
    /// `true` when a resource limit stopped the search.
    pub limit_reached: bool,
    /// `true` when the search was stopped by a cancellation token or a
    /// deadline (a subset of `limit_reached`).
    pub cancelled: bool,
}

/// Per-worker statistics of one parallel search run (scheduling-dependent
/// observability data; the search result itself is deterministic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index within the pool.
    pub worker: usize,
    /// Frontier nodes this worker planned.
    pub nodes_planned: usize,
    /// Successor states this worker computed.
    pub successors_planned: usize,
    /// Time this worker spent planning, in microseconds.
    pub busy_micros: u64,
}

impl WorkerStats {
    /// Merge another worker's counters into this one (used when folding
    /// per-round pools — and the two search phases — into one per-worker
    /// summary).
    pub(crate) fn absorb(&mut self, other: &WorkerStats) {
        self.nodes_planned += other.nodes_planned;
        self.successors_planned += other.successors_planned;
        self.busy_micros += other.busy_micros;
    }
}

/// Grow a per-worker statistics vector (indexed by worker) to cover
/// `workers` entries — a dynamic [`crate::schedule::ThreadBudget`] can
/// raise the worker count mid-run, and the stats must keep one slot per
/// worker index ever used.
pub(crate) fn ensure_worker_slots(stats: &mut Vec<WorkerStats>, workers: usize) {
    for worker in stats.len()..workers {
        stats.push(WorkerStats {
            worker,
            ..WorkerStats::default()
        });
    }
}

/// Fold one pool's per-worker statistics into another, matching entries by
/// worker index (used to combine the reachability search, the auxiliary
/// repeated-reachability search and its edge-construction pool into one
/// per-worker summary).
pub fn merge_worker_stats(into: &mut Vec<WorkerStats>, from: &[WorkerStats]) {
    for stats in from {
        match into.iter_mut().find(|w| w.worker == stats.worker) {
            Some(w) => w.absorb(stats),
            None => into.push(*stats),
        }
    }
}

/// Outcome of the search phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A finite violating local run was found; the payload is the index of
    /// the violating tree node.
    FiniteViolation(usize),
    /// The reachable symbolic state space was exhausted.
    Exhausted,
    /// A resource limit was hit before exhaustion.
    LimitReached,
}

/// One speculatively planned successor of a frontier node.
struct SuccessorPlan {
    /// The observable service that produced it.
    service: ServiceRef,
    /// `true` iff the transition closes the task in a padding-accepting
    /// automaton state (a finite violation).
    finite_violation: bool,
    /// The successor state with the speculative acceleration applied
    /// (counters may hold provisional type ids).
    state: ProductState,
    /// The successor's counters *before* acceleration, kept so the
    /// acceleration can be replayed against the live tree when the
    /// speculation is invalidated.
    raw_counters: CounterVec,
    /// ω-applications in the speculative acceleration.
    accelerations: usize,
    /// First snapshot-active node covering the successor, if any.
    covered_by: Option<u32>,
    /// Snapshot-active nodes the successor covers (prune candidates).
    prunes: Vec<u32>,
}

/// The plan of one frontier node: the stored types it introduces (in
/// first-intern order) and its successor plans.
struct NodePlan {
    new_types: Vec<StoredTypeId>,
    succs: Vec<SuccessorPlan>,
}

/// One entry of the compact successor log: the raw (pre-acceleration)
/// product successor of `parent` under `service`, with its type and
/// counters interned into the search arena — ~40 bytes per entry instead
/// of an owned [`ProductState`].
pub(crate) struct LoggedSuccessor {
    /// The expanded tree node.
    pub(crate) parent: u32,
    /// The observable service of the transition.
    pub(crate) service: ServiceRef,
    pit: u32,
    counters: u32,
    child_active: u64,
    buchi: u32,
    closed: bool,
}

/// The Karp–Miller search engine.
pub struct KarpMillerSearch<'a> {
    product: &'a ProductSystem,
    /// The coverage order used for pruning.
    pub coverage: CoverageKind,
    /// Whether the inverted-list index filters coverage candidates
    /// (the "data structure support" optimisation).
    pub use_index: bool,
    /// When set, coverage/prune candidates are discovered through the
    /// pre-overhaul full linear scans over the node table instead of the
    /// per-discrete-group vectors (only meaningful without the index).
    /// Kept as a differential oracle for the grouped layout and as the
    /// denominator of the `state_layout` benchmark; results are
    /// bit-identical, only slower.
    pub reference_layout: bool,
    /// Resource limits.
    pub limits: SearchLimits,
    /// Number of worker threads expanding the frontier (0 = one per
    /// available core, 1 = sequential).
    pub threads: usize,
    /// The tree, in arena-backed structure-of-arrays storage.
    pub arena: StateArena,
    /// Stored-tuple type interner shared by the whole search.
    pub interner: StoredTypeInterner,
    /// Statistics.
    pub stats: SearchStats,
    /// Per-worker statistics of the last run (empty before `run`).
    pub worker_stats: Vec<WorkerStats>,
    /// When set, the apply phase logs every product successor it replays —
    /// the parent node, the observable service and the successor state
    /// *before* ω-acceleration — so the repeated-reachability post-pass
    /// can build its abstract transition graph without re-enumerating
    /// successors (enumeration is the dominant cost of that pass).
    pub(crate) record_successors: bool,
    /// The log filled when [`KarpMillerSearch::record_successors`] is set,
    /// in deterministic apply order (grouped by parent, parents ascending).
    pub(crate) successor_log: Vec<LoggedSuccessor>,
    /// Compact the successor log (dropping entries of pruned parents) once
    /// it reaches this size; doubles after every compaction.
    log_compact_at: usize,
    /// Set when a plan-phase worker thread panicked.  The round's plans
    /// are then discarded unapplied (the tree stays consistent — the
    /// apply phase never saw them), the search stops at that boundary
    /// like a resource limit, and the owning engine request surfaces the
    /// message as a typed [`crate::error::VerifasError::Internal`]
    /// instead of aborting the process.  Sticky for the run.
    pub failure: Option<String>,
    index: StateIndex,
    /// Active arena ids per discrete key, ascending — the coverage/prune
    /// candidate map used when the index is off (every coverage relation
    /// requires equal discrete keys, so the group holds every candidate a
    /// full scan could accept, in the same id order).
    groups: HashMap<(usize, u64, bool), Vec<u32>>,
}

impl<'a> KarpMillerSearch<'a> {
    /// Create a (sequential) search over a product system; set
    /// [`KarpMillerSearch::threads`] to parallelise it.
    pub fn new(
        product: &'a ProductSystem,
        coverage: CoverageKind,
        use_index: bool,
        limits: SearchLimits,
    ) -> Self {
        KarpMillerSearch {
            product,
            coverage,
            use_index,
            reference_layout: false,
            limits,
            threads: 1,
            arena: StateArena::new(),
            interner: StoredTypeInterner::new(),
            stats: SearchStats::default(),
            worker_stats: Vec::new(),
            record_successors: false,
            successor_log: Vec::new(),
            log_compact_at: 1024,
            failure: None,
            index: StateIndex::new(),
            groups: HashMap::new(),
        }
    }

    /// Deterministic estimate of this search's resident bytes, re-based on
    /// the actual occupancy of the state arenas (rows, distinct types and
    /// their edges, counter slab entries) plus fixed per-element costs for
    /// the interner and the compact successor log — never an allocator
    /// probe, so a memory-budgeted run takes the same rounds on every
    /// host.
    pub fn estimated_bytes(&self) -> usize {
        const TYPE_BYTES: usize = 192;
        const LOG_BYTES: usize = 40;
        self.arena.estimated_bytes()
            + self.interner.len() * TYPE_BYTES
            + self.successor_log.len() * LOG_BYTES
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` before any node has been created.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Is the node active (not pruned)?
    pub fn is_active(&self, node: usize) -> bool {
        self.arena.is_active(node as u32)
    }

    /// Has the apply phase replayed this node's successors?  (An exhausted
    /// search expands every node; only a limit-stopped one leaves active
    /// frontier nodes unexpanded.)
    pub fn is_expanded(&self, node: usize) -> bool {
        self.arena.is_expanded(node as u32)
    }

    /// The node's parent, if any.
    pub fn parent_of(&self, node: usize) -> Option<usize> {
        self.arena.parent(node as u32).map(|p| p as usize)
    }

    /// The observable service that produced the node.
    pub fn service_of(&self, node: usize) -> ServiceRef {
        self.arena.service(node as u32)
    }

    /// A borrowed view of the node's state.
    pub fn state_view(&self, node: usize) -> StateView<'_> {
        self.arena.view(node as u32)
    }

    /// Materialise an owned copy of the node's state.
    pub fn materialize_state(&self, node: usize) -> ProductState {
        self.arena.materialize(node as u32)
    }

    /// A borrowed view of a compact successor-log entry.
    pub(crate) fn logged_view(&self, entry: &LoggedSuccessor) -> StateView<'_> {
        self.arena.raw_view(
            entry.pit,
            entry.counters,
            entry.child_active,
            entry.buchi,
            entry.closed,
        )
    }

    /// The worker count after resolving the automatic setting.
    fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Run the search to completion (or until a limit / finite violation),
    /// without observation or cancellation.
    pub fn run(&mut self) -> SearchOutcome {
        self.run_with(&mut SearchControl::default())
    }

    /// Run the search under a [`SearchControl`]: progress events are
    /// emitted to its observer every [`SearchControl::progress_every`]
    /// state expansions, and the search stops (reporting
    /// [`SearchOutcome::LimitReached`] with
    /// [`SearchStats::cancelled`] set) when its token is cancelled or its
    /// deadline passes.  Cancellation is polled by every worker thread, so
    /// a parallel run stops at the next state expansion of each worker.
    pub fn run_with(&mut self, control: &mut SearchControl<'_>) -> SearchOutcome {
        let start = Instant::now();
        let phase = control.current_phase();
        let granularity = control.granularity();
        let configured = self.effective_threads();
        let mut workers = control.workers_for_round(configured);
        // `threads` reports the widest pool this run ever used (equal to
        // the configured count when no dynamic budget is installed).
        self.stats.threads = workers;
        self.worker_stats = Vec::new();
        ensure_worker_slots(&mut self.worker_stats, workers);
        let mut expanded_since_event = 0usize;
        control.emit(ProgressEvent::PhaseStarted { phase });
        let mut frontier: Vec<u32> = Vec::new();
        for state in self.product.initial_states() {
            let id = self.add_node(&state, None, self.product.task.opening_service());
            frontier.push(id);
        }
        let outcome = 'search: loop {
            if frontier.is_empty() {
                break SearchOutcome::Exhausted;
            }
            // Round boundary: report the live frontier width (the
            // scheduler weights straggler budgets by it) and re-poll the
            // dynamic thread budget, if one is installed.  A round is
            // bit-identical for every worker count, so resizing the pool
            // here cannot change the tree, the statistics, the verdict or
            // the witness.
            control.report_frontier(frontier.len());
            workers = control.workers_for_round(configured);
            self.stats.threads = self.stats.threads.max(workers);
            ensure_worker_slots(&mut self.worker_stats, workers);
            // Memory boundary: re-account the arenas against the installed
            // byte budget.  A refused grow stops the run here — like a
            // state limit, never an OOM abort; the lease's sticky flag
            // tells the owner why.
            if !control.charge_memory(self.estimated_bytes()) {
                self.stats.limit_reached = true;
                break 'search SearchOutcome::LimitReached;
            }
            // Plan phase: speculate on every frontier node in parallel
            // against the frozen tree.  Workers honour the run's own
            // wall-clock budget, so a large frontier cannot overshoot
            // `limits.max_millis` by a whole round of planning.
            let time_budget = start + Duration::from_millis(self.limits.max_millis);
            let (mut plans, scratch) = self.plan_round(&frontier, workers, time_budget, control);
            // A panicked plan worker leaves its chunk's plans incomplete;
            // applying the rest would diverge from a sequential run.  Drop
            // the whole round and stop at this boundary — the tree holds
            // only fully applied rounds, and the failure message reaches
            // the caller through `self.failure`.
            if self.failure.is_some() {
                self.stats.limit_reached = true;
                break 'search SearchOutcome::LimitReached;
            }
            // Apply phase: replay the plans in deterministic order.
            let round_base = self.arena.len() as u32;
            let mut remap: HashMap<StoredTypeId, StoredTypeId> = HashMap::new();
            let mut deactivated_this_round: HashSet<u32> = HashSet::new();
            let mut next: Vec<u32> = Vec::new();
            for (pos, &id) in frontier.iter().enumerate() {
                if !self.arena.is_active(id) {
                    continue;
                }
                if control.should_stop() {
                    self.stats.limit_reached = true;
                    self.stats.cancelled = true;
                    break 'search SearchOutcome::LimitReached;
                }
                if self.arena.len() >= self.limits.max_states
                    || start.elapsed().as_millis() as u64 >= self.limits.max_millis
                {
                    self.stats.limit_reached = true;
                    break 'search SearchOutcome::LimitReached;
                }
                expanded_since_event += 1;
                if expanded_since_event >= granularity {
                    expanded_since_event = 0;
                    control.emit(ProgressEvent::Progress {
                        phase,
                        states_created: self.stats.states_created,
                        frontier: frontier.len() - pos - 1 + next.len(),
                        accelerations: self.stats.accelerations,
                    });
                }
                let plan = plans[pos].take().expect(
                    "a plan can only be missing after cancellation or the time budget, \
                     which the checks above turn into LimitReached",
                );
                if let Some(violation) = self.apply_plan(
                    id,
                    plan,
                    &scratch,
                    &mut remap,
                    round_base,
                    &mut deactivated_this_round,
                    &mut next,
                ) {
                    break 'search SearchOutcome::FiniteViolation(violation as usize);
                }
            }
            frontier = next;
            // The successor log only serves finally-active parents; drop
            // entries of pruned nodes once the log doubles past the last
            // compaction (amortized O(total log) over the whole search).
            if self.record_successors && self.successor_log.len() >= self.log_compact_at {
                let arena = &self.arena;
                self.successor_log.retain(|e| arena.is_active(e.parent));
                self.log_compact_at = (self.successor_log.len() * 2).max(1024);
            }
        };
        self.stats.states_active = self.arena.active_count();
        self.stats.stored_types = self.interner.len();
        self.stats.elapsed_ms = start.elapsed().as_millis() as u64;
        control.emit(ProgressEvent::PhaseFinished {
            phase,
            stats: self.stats,
        });
        outcome
    }

    /// Speculatively plan every frontier node.  Returns one optional plan
    /// per frontier position plus the per-worker scratch type tables
    /// needed to resolve provisional ids.
    ///
    /// A plan may be missing only for a node that was already inactive,
    /// after cancellation / the `time_budget` deadline, or after a worker
    /// panic (recorded in [`KarpMillerSearch::failure`]) — conditions
    /// that are sticky, so the apply loop's own checks always break
    /// before reaching an unplanned position.
    #[allow(clippy::type_complexity)]
    fn plan_round(
        &mut self,
        frontier: &[u32],
        workers: usize,
        time_budget: Instant,
        control: &SearchControl<'_>,
    ) -> (Vec<Option<NodePlan>>, Vec<Vec<(ArtRelId, Pit)>>) {
        let out_of_time = move || control.should_stop() || Instant::now() >= time_budget;
        // Small rounds are planned inline: a thread pool would cost more
        // than it saves and the plan/apply split alone preserves
        // determinism.
        if workers <= 1 || frontier.len() < 2 * workers {
            let mut interner = WorkerInterner::new(&self.interner, 0);
            let mut stats = WorkerStats::default();
            let t0 = Instant::now();
            let mut plans = Vec::with_capacity(frontier.len());
            for &id in frontier {
                if !self.arena.is_active(id) || out_of_time() {
                    plans.push(None);
                    continue;
                }
                plans.push(Some(self.plan_node(id, &mut interner, &mut stats)));
            }
            stats.busy_micros = t0.elapsed().as_micros() as u64;
            self.worker_stats[0].absorb(&stats);
            return (plans, vec![interner.into_types()]);
        }
        let slots: Vec<Mutex<Option<NodePlan>>> =
            frontier.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let chunk = (frontier.len() / (workers * 4)).max(1);
        let mut scratch: Vec<Vec<(ArtRelId, Pit)>> = vec![Vec::new(); workers];
        let mut round_stats: Vec<WorkerStats> = vec![WorkerStats::default(); workers];
        let mut failure: Option<String> = None;
        let this = &*self;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let slots = &slots;
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut interner = WorkerInterner::new(&this.interner, worker);
                        let mut stats = WorkerStats::default();
                        let t0 = Instant::now();
                        'steal: loop {
                            let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if begin >= frontier.len() {
                                break;
                            }
                            let end = (begin + chunk).min(frontier.len());
                            for pos in begin..end {
                                if out_of_time() {
                                    break 'steal;
                                }
                                let id = frontier[pos];
                                if !this.arena.is_active(id) {
                                    continue;
                                }
                                let plan = this.plan_node(id, &mut interner, &mut stats);
                                // Recover a poisoned slot instead of
                                // propagating the panic: slots only ever
                                // hold fully constructed plans, so the
                                // contents stay consistent even when a
                                // sibling worker panicked mid-round.
                                *slots[pos]
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(plan);
                            }
                        }
                        stats.busy_micros = t0.elapsed().as_micros() as u64;
                        (interner.into_types(), stats)
                    })
                })
                .collect();
            for (worker, handle) in handles.into_iter().enumerate() {
                // A panicked worker must degrade to a typed error, not
                // abort the process: record the first panic message (the
                // run stops at this round boundary) and keep joining the
                // rest of the pool so no thread leaks.
                match handle.join() {
                    Ok((types, stats)) => {
                        scratch[worker] = types;
                        round_stats[worker] = stats;
                    }
                    Err(panic) => {
                        let _ = failure.get_or_insert_with(|| {
                            format!(
                                "search worker panicked: {}",
                                crate::error::panic_message(panic.as_ref())
                            )
                        });
                    }
                }
            }
        });
        if let Some(reason) = failure {
            self.failure.get_or_insert(reason);
        }
        for (worker, stats) in round_stats.iter().enumerate() {
            self.worker_stats[worker].absorb(stats);
        }
        (
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                })
                .collect(),
            scratch,
        )
    }

    /// Plan one frontier node against the frozen tree snapshot.
    fn plan_node(
        &self,
        id: u32,
        interner: &mut WorkerInterner<'_>,
        stats: &mut WorkerStats,
    ) -> NodePlan {
        interner.begin_node();
        let current = self.arena.materialize(id);
        let successors = self.product.successors(&current, interner);
        stats.nodes_planned += 1;
        stats.successors_planned += successors.len();
        let mut succs = Vec::with_capacity(successors.len());
        for succ in successors {
            let mut state = succ.state;
            let raw_counters = state.psi.counters.clone();
            // Speculative ω-acceleration against the snapshot-active
            // ancestors (walking up from the expanded node, like the
            // sequential search).
            let mut accelerations = 0usize;
            let mut ancestor = Some(id);
            while let Some(a) = ancestor {
                if self.arena.is_active(a) {
                    if let Some(counters) =
                        accelerate(self.coverage, self.arena.view(a), state.view(), &*interner)
                    {
                        state.psi.counters = counters;
                        accelerations += 1;
                    }
                }
                ancestor = self.arena.parent(a);
            }
            let finite_violation = succ.finite_violation;
            let (covered_by, prunes) = if finite_violation {
                (None, Vec::new())
            } else {
                (
                    self.snapshot_covered_by(&state, &*interner),
                    self.snapshot_prunes(&state, &*interner),
                )
            };
            succs.push(SuccessorPlan {
                service: succ.service,
                finite_violation,
                state,
                raw_counters,
                accelerations,
                covered_by,
                prunes,
            });
            // The apply phase stops at a finite violation, so nothing
            // after it can be needed.
            if finite_violation {
                break;
            }
        }
        NodePlan {
            new_types: interner.take_node_new(),
            succs,
        }
    }

    /// The group candidate vector of a state, if one exists (empty when
    /// the discrete key has never been seen).
    fn group_of(&self, state: StateView<'_>) -> &[u32] {
        self.groups
            .get(&crate::coverage::discrete_key(state))
            .map_or(&[], Vec::as_slice)
    }

    /// First snapshot-active node covering the candidate state, if any.
    fn snapshot_covered_by(&self, state: &ProductState, interner: &dyn TypeTable) -> Option<u32> {
        let view = state.view();
        if self.use_index {
            self.index
                .subset_candidates(view, interner)
                .into_iter()
                .find(|&j| {
                    self.arena.is_active(j)
                        && covers(self.coverage, view, self.arena.view(j), interner)
                })
        } else if self.reference_layout {
            (0..self.arena.len() as u32).find(|&j| {
                self.arena.is_active(j) && covers(self.coverage, view, self.arena.view(j), interner)
            })
        } else {
            // Group members are exactly the active states sharing the
            // discrete key, ascending — the only ones `covers` can accept,
            // in the order the full scan would have visited them.
            self.group_of(view)
                .iter()
                .copied()
                .find(|&j| covers(self.coverage, view, self.arena.view(j), interner))
        }
    }

    /// All snapshot-active nodes covered by the candidate state.
    fn snapshot_prunes(&self, state: &ProductState, interner: &dyn TypeTable) -> Vec<u32> {
        let view = state.view();
        if self.use_index {
            self.index
                .superset_candidates(view, interner)
                .into_iter()
                .filter(|&j| {
                    self.arena.is_active(j)
                        && covers(self.coverage, self.arena.view(j), view, interner)
                })
                .collect()
        } else if self.reference_layout {
            (0..self.arena.len() as u32)
                .filter(|&j| {
                    self.arena.is_active(j)
                        && covers(self.coverage, self.arena.view(j), view, interner)
                })
                .collect()
        } else {
            self.group_of(view)
                .iter()
                .copied()
                .filter(|&j| covers(self.coverage, self.arena.view(j), view, interner))
                .collect()
        }
    }

    /// Replay one node's plan against the live tree.  Returns the id of a
    /// finite-violation node when one is reached.
    #[allow(clippy::too_many_arguments)]
    fn apply_plan(
        &mut self,
        id: u32,
        plan: NodePlan,
        scratch: &[Vec<(ArtRelId, Pit)>],
        remap: &mut HashMap<StoredTypeId, StoredTypeId>,
        round_base: u32,
        deactivated_this_round: &mut HashSet<u32>,
        next: &mut Vec<u32>,
    ) -> Option<u32> {
        self.arena.mark_expanded(id);
        // Publish the node's new stored types in first-intern order; this
        // is what makes the final type numbering (and hence successor
        // enumeration in later rounds) independent of worker scheduling.
        for &pid in &plan.new_types {
            let (worker, local) = provisional_parts(pid);
            let (rel, pit) = &scratch[worker][local];
            let gid = self.interner.intern(*rel, pit.clone());
            remap.insert(pid, gid);
        }
        let publish = |counters: &CounterVec| {
            counters.map_ids(|t| if is_provisional(t) { remap[&t] } else { t })
        };
        // Did anything this round touch the ancestors the speculation was
        // computed against?
        let mut ancestors: HashSet<u32> = HashSet::new();
        let mut a = Some(id);
        while let Some(x) = a {
            ancestors.insert(x);
            a = self.arena.parent(x);
        }
        let speculation_valid = deactivated_this_round.is_disjoint(&ancestors);
        for succ in plan.succs {
            let mut state = succ.state;
            if self.record_successors {
                // Log the *raw* successor (pre-acceleration counters): the
                // repeated-reachability edge tests run on the successors
                // the product defines, exactly as a re-enumeration would
                // produce them.  The entry is published compactly — type
                // and counters interned into the shared arena.
                let raw = publish(&succ.raw_counters);
                let entry = LoggedSuccessor {
                    parent: id,
                    service: succ.service,
                    pit: self.arena.intern_pit(&state.psi.pit),
                    counters: self.arena.intern_counters(raw.as_slice()),
                    child_active: state.psi.child_active,
                    buchi: state.buchi as u32,
                    closed: state.closed,
                };
                self.successor_log.push(entry);
            }
            let accelerations;
            if speculation_valid {
                state.psi.counters = publish(&state.psi.counters);
                accelerations = succ.accelerations;
            } else {
                // An ancestor was deactivated after the plan was made:
                // replay the acceleration against the live tree.
                state.psi.counters = publish(&succ.raw_counters);
                let mut count = 0usize;
                let mut ancestor = Some(id);
                while let Some(a) = ancestor {
                    if self.arena.is_active(a) {
                        if let Some(counters) = accelerate(
                            self.coverage,
                            self.arena.view(a),
                            state.view(),
                            &self.interner,
                        ) {
                            state.psi.counters = counters;
                            count += 1;
                        }
                    }
                    ancestor = self.arena.parent(a);
                }
                accelerations = count;
            }
            self.stats.accelerations += accelerations;
            if succ.finite_violation {
                let vid = self.add_node(&state, Some(id), succ.service);
                return Some(vid);
            }
            // Skip if an active state already covers the new one.  The
            // speculative answer is reused when it still holds; states
            // added earlier in this round are always re-checked live.
            let covered = if !speculation_valid {
                self.covered_by_active(&state)
            } else {
                match succ.covered_by {
                    Some(j) if !deactivated_this_round.contains(&j) => true,
                    Some(_) => self.covered_by_active(&state),
                    None => self.covered_by_added(&state, round_base),
                }
            };
            if covered {
                self.stats.states_skipped += 1;
                continue;
            }
            // Monotone pruning: deactivate active states (and their
            // descendants) covered by the new one, except ancestors of
            // the node being extended (conservative variant of the
            // Reynier–Servais rule).
            let mut to_prune: Vec<u32> = if speculation_valid {
                succ.prunes
                    .iter()
                    .copied()
                    .filter(|j| self.arena.is_active(*j) && !ancestors.contains(j))
                    .collect()
            } else {
                self.live_prunes(&state, &ancestors, 0)
            };
            if speculation_valid {
                // States added this round were invisible to the plan.
                to_prune.extend(self.live_prunes(&state, &ancestors, round_base));
            }
            for j in to_prune {
                self.deactivate_subtree(j, &ancestors, deactivated_this_round);
            }
            let new_id = self.add_node(&state, Some(id), succ.service);
            next.push(new_id);
        }
        None
    }

    fn add_node(&mut self, state: &ProductState, parent: Option<u32>, service: ServiceRef) -> u32 {
        let id = self.arena.push(state, parent, service);
        if self.use_index {
            self.index.insert(id, self.arena.view(id), &self.interner);
        } else if !self.reference_layout {
            self.groups
                .entry(self.arena.discrete_key(id))
                .or_default()
                .push(id);
        }
        self.stats.states_created += 1;
        id
    }

    /// Is the candidate state covered by some active state of the live
    /// tree?
    fn covered_by_active(&self, state: &ProductState) -> bool {
        let view = state.view();
        if self.use_index {
            // Candidates whose signature is a subset of the query's — the
            // only ones that can be less restrictive (and hence cover it).
            self.index
                .subset_candidates(view, &self.interner)
                .into_iter()
                .any(|j| {
                    self.arena.is_active(j)
                        && covers(self.coverage, view, self.arena.view(j), &self.interner)
                })
        } else if self.reference_layout {
            (0..self.arena.len() as u32).any(|j| {
                self.arena.is_active(j)
                    && covers(self.coverage, view, self.arena.view(j), &self.interner)
            })
        } else {
            self.group_of(view)
                .iter()
                .any(|&j| covers(self.coverage, view, self.arena.view(j), &self.interner))
        }
    }

    /// Is the candidate covered by an active state created at or after
    /// `round_base` (i.e. in the current round)?
    fn covered_by_added(&self, state: &ProductState, round_base: u32) -> bool {
        let view = state.view();
        if self.use_index {
            self.index
                .subset_candidates(view, &self.interner)
                .into_iter()
                .any(|j| {
                    j >= round_base
                        && self.arena.is_active(j)
                        && covers(self.coverage, view, self.arena.view(j), &self.interner)
                })
        } else if self.reference_layout {
            (round_base..self.arena.len() as u32).any(|j| {
                self.arena.is_active(j)
                    && covers(self.coverage, view, self.arena.view(j), &self.interner)
            })
        } else {
            let group = self.group_of(view);
            let from = group.partition_point(|&j| j < round_base);
            group[from..]
                .iter()
                .any(|&j| covers(self.coverage, view, self.arena.view(j), &self.interner))
        }
    }

    /// Active, non-ancestor nodes with id ≥ `from` covered by `state` on
    /// the live tree.
    fn live_prunes(&self, state: &ProductState, ancestors: &HashSet<u32>, from: u32) -> Vec<u32> {
        let view = state.view();
        let accepts = |j: u32| {
            !ancestors.contains(&j)
                && covers(self.coverage, self.arena.view(j), view, &self.interner)
        };
        if self.use_index {
            self.index
                .superset_candidates(view, &self.interner)
                .into_iter()
                .filter(|&j| j >= from && self.arena.is_active(j) && accepts(j))
                .collect()
        } else if self.reference_layout {
            (from..self.arena.len() as u32)
                .filter(|&j| self.arena.is_active(j) && accepts(j))
                .collect()
        } else {
            let group = self.group_of(view);
            let start = group.partition_point(|&j| j < from);
            group[start..]
                .iter()
                .copied()
                .filter(|&j| accepts(j))
                .collect()
        }
    }

    fn deactivate_subtree(
        &mut self,
        root: u32,
        protected: &HashSet<u32>,
        deactivated: &mut HashSet<u32>,
    ) {
        let mut stack = vec![root];
        while let Some(j) = stack.pop() {
            if protected.contains(&j) || !self.arena.is_active(j) {
                continue;
            }
            self.arena.set_active(j, false);
            deactivated.insert(j);
            self.stats.states_pruned += 1;
            if self.use_index {
                self.index.remove(j, self.arena.view(j));
            } else if !self.reference_layout {
                // Ordered removal keeps the group vector ascending.
                let key = self.arena.discrete_key(j);
                if let Some(group) = self.groups.get_mut(&key) {
                    if let Ok(pos) = group.binary_search(&j) {
                        group.remove(pos);
                    }
                }
            }
            stack.extend(self.arena.children(j));
        }
    }

    /// Indices of the nodes still active at the end of the search (the
    /// coverability-set candidates).
    pub fn active_nodes(&self) -> Vec<usize> {
        (0..self.arena.len() as u32)
            .filter(|&i| self.arena.is_active(i))
            .map(|i| i as usize)
            .collect()
    }

    /// The path of services and states from an initial node to `node`
    /// (inclusive), oldest first — used to build counterexample traces.
    pub fn trace(&self, node: usize) -> Vec<(ServiceRef, ProductState)> {
        let mut out = Vec::new();
        let mut current = Some(node as u32);
        while let Some(i) = current {
            out.push((self.arena.service(i), self.arena.materialize(i)));
            current = self.arena.parent(i);
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_ltl::{Ltl, LtlFoProperty};
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, TaskId, Term, Update,
    };

    /// The unbounded-pool workflow: statuses cycle and every cycle inserts
    /// a tuple, so the counter grows without bound and acceleration must
    /// kick in for the search to terminate.
    fn unbounded_pool() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        let pool = root.art_relation_like("POOL", &[status]);
        root.service_parts(
            "produce",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Made")),
            vec![],
            None,
        );
        root.service_parts(
            "stash",
            Condition::eq(Term::var(status), Term::str("Made")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            Some(Update::Insert {
                rel: pool,
                vars: vec![status],
            }),
        );
        let mut b = SpecBuilder::new("unbounded", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    fn trivial_property() -> LtlFoProperty {
        LtlFoProperty::new("false-baseline", TaskId::new(0), vec![], Ltl::False, vec![])
    }

    #[test]
    fn search_terminates_on_unbounded_counters_via_acceleration() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            CoverageKind::Subsumption,
            true,
            SearchLimits {
                max_states: 5_000,
                max_millis: 30_000,
            },
        );
        let outcome = search.run();
        assert_eq!(outcome, SearchOutcome::Exhausted);
        assert!(search.stats.accelerations > 0, "acceleration must fire");
        assert!(search.stats.states_created < 100);
    }

    #[test]
    fn standard_coverage_also_terminates_here() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            CoverageKind::Standard,
            false,
            SearchLimits::default(),
        );
        assert_eq!(search.run(), SearchOutcome::Exhausted);
    }

    #[test]
    fn trace_walks_back_to_an_initial_state() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            CoverageKind::Subsumption,
            false,
            SearchLimits::default(),
        );
        search.run();
        let last = search.len() - 1;
        let trace = search.trace(last);
        assert!(!trace.is_empty());
        assert_eq!(trace[0].0, product.task.opening_service());
    }

    #[test]
    fn limits_stop_the_search() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            // Equality pruning cannot cope with unbounded counters, so the
            // node limit must trigger.
            CoverageKind::Equality,
            false,
            SearchLimits {
                max_states: 50,
                max_millis: 10_000,
            },
        );
        assert_eq!(search.run(), SearchOutcome::LimitReached);
        assert!(search.stats.limit_reached);
    }

    /// A parallel run is bit-identical to a sequential one: same tree
    /// size, same active set, same statistics (up to timing and thread
    /// configuration).
    #[test]
    fn parallel_run_matches_sequential_exactly() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        for (coverage, use_index) in [
            (CoverageKind::Subsumption, true),
            (CoverageKind::Subsumption, false),
            (CoverageKind::Standard, false),
        ] {
            let limits = SearchLimits {
                max_states: 5_000,
                max_millis: 60_000,
            };
            let mut sequential = KarpMillerSearch::new(&product, coverage, use_index, limits);
            let seq_outcome = sequential.run();
            let mut parallel = KarpMillerSearch::new(&product, coverage, use_index, limits);
            parallel.threads = 4;
            let par_outcome = parallel.run();
            assert_eq!(seq_outcome, par_outcome);
            assert_eq!(sequential.len(), parallel.len());
            assert_eq!(sequential.active_nodes(), parallel.active_nodes());
            assert_eq!(sequential.interner.len(), parallel.interner.len());
            let mut seq_stats = sequential.stats;
            let mut par_stats = parallel.stats;
            seq_stats.elapsed_ms = 0;
            par_stats.elapsed_ms = 0;
            seq_stats.threads = 0;
            par_stats.threads = 0;
            assert_eq!(seq_stats, par_stats);
            assert_eq!(parallel.worker_stats.len(), 4);
            let planned: usize = parallel.worker_stats.iter().map(|w| w.nodes_planned).sum();
            assert!(planned > 0, "workers must have planned some nodes");
        }
    }

    /// The grouped candidate map must be a bit-identical replacement for
    /// the pre-overhaul full linear scans (the `reference_layout` oracle):
    /// same tree, same active set, same statistics.
    #[test]
    fn grouped_layout_matches_reference_scans_exactly() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        for coverage in [
            CoverageKind::Subsumption,
            CoverageKind::Standard,
            CoverageKind::Equality,
        ] {
            let limits = SearchLimits {
                max_states: 300,
                max_millis: 60_000,
            };
            let mut grouped = KarpMillerSearch::new(&product, coverage, false, limits);
            let grouped_outcome = grouped.run();
            let mut reference = KarpMillerSearch::new(&product, coverage, false, limits);
            reference.reference_layout = true;
            let reference_outcome = reference.run();
            assert_eq!(grouped_outcome, reference_outcome);
            assert_eq!(grouped.len(), reference.len());
            assert_eq!(grouped.active_nodes(), reference.active_nodes());
            let mut g = grouped.stats;
            let mut r = reference.stats;
            g.elapsed_ms = 0;
            r.elapsed_ms = 0;
            assert_eq!(g, r);
        }
    }
}
