//! The Karp–Miller search over partial symbolic instances (Algorithm 1)
//! with ω-acceleration (Section 3.3), monotone pruning (Section 3.4, after
//! Reynier–Servais) and the ≼-based aggressive pruning (Section 3.5),
//! optionally filtered through the inverted-list index (Section 3.6).
//!
//! The search explores the product of the symbolic transition system with
//! the violation automaton.  It stops immediately when a *finite* violating
//! local run is found (the task closes in a padding-accepting automaton
//! state); otherwise it computes a coverability-style set of active states
//! which the repeated-reachability analysis ([`crate::repeated`]) then uses
//! to look for *infinite* violations.

use crate::coverage::{accelerate, covers, CoverageKind};
use crate::index::StateIndex;
use crate::observer::{ProgressEvent, SearchControl};
use crate::product::{ProductState, ProductSystem};
use crate::psi::StoredTypeInterner;
use std::collections::VecDeque;
use std::time::Instant;
use verifas_model::ServiceRef;

/// Resource limits of a search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of tree nodes created before giving up.
    pub max_states: usize,
    /// Wall-clock budget in milliseconds.
    pub max_millis: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_states: 100_000,
            max_millis: 60_000,
        }
    }
}

/// Statistics of one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes created in the Karp–Miller tree.
    pub states_created: usize,
    /// Nodes still active (the coverability set candidates) at the end.
    pub states_active: usize,
    /// New states discarded because an active state already covered them.
    pub states_skipped: usize,
    /// Active states deactivated by the monotone pruning.
    pub states_pruned: usize,
    /// Number of ω-accelerations applied.
    pub accelerations: usize,
    /// Stored tuple types interned.
    pub stored_types: usize,
    /// Elapsed wall-clock time in milliseconds.
    pub elapsed_ms: u64,
    /// `true` when a resource limit stopped the search.
    pub limit_reached: bool,
    /// `true` when the search was stopped by a cancellation token or a
    /// deadline (a subset of `limit_reached`).
    pub cancelled: bool,
}

/// Outcome of the search phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A finite violating local run was found; the payload is the index of
    /// the violating tree node.
    FiniteViolation(usize),
    /// The reachable symbolic state space was exhausted.
    Exhausted,
    /// A resource limit was hit before exhaustion.
    LimitReached,
}

/// One node of the Karp–Miller tree.
#[derive(Debug, Clone)]
pub struct SearchNode {
    /// The product state.
    pub state: ProductState,
    /// Parent node (None for initial states).
    pub parent: Option<usize>,
    /// The observable service that produced this node (None only for the
    /// virtual root of initial states, which are produced by the task's
    /// opening service).
    pub service: ServiceRef,
    /// `false` when the node has been deactivated by the monotone pruning.
    pub active: bool,
    children: Vec<usize>,
}

/// The Karp–Miller search engine.
pub struct KarpMillerSearch<'a> {
    product: &'a ProductSystem,
    /// The coverage order used for pruning.
    pub coverage: CoverageKind,
    /// Whether the inverted-list index filters coverage candidates
    /// (the "data structure support" optimisation).
    pub use_index: bool,
    /// Resource limits.
    pub limits: SearchLimits,
    /// The tree.
    pub nodes: Vec<SearchNode>,
    /// Stored-tuple type interner shared by the whole search.
    pub interner: StoredTypeInterner,
    /// Statistics.
    pub stats: SearchStats,
    index: StateIndex,
}

impl<'a> KarpMillerSearch<'a> {
    /// Create a search over a product system.
    pub fn new(
        product: &'a ProductSystem,
        coverage: CoverageKind,
        use_index: bool,
        limits: SearchLimits,
    ) -> Self {
        KarpMillerSearch {
            product,
            coverage,
            use_index,
            limits,
            nodes: Vec::new(),
            interner: StoredTypeInterner::new(),
            stats: SearchStats::default(),
            index: StateIndex::new(),
        }
    }

    /// Run the search to completion (or until a limit / finite violation),
    /// without observation or cancellation.
    pub fn run(&mut self) -> SearchOutcome {
        self.run_with(&mut SearchControl::default())
    }

    /// Run the search under a [`SearchControl`]: progress events are
    /// emitted to its observer every [`SearchControl::progress_every`]
    /// state expansions, and the search stops (reporting
    /// [`SearchOutcome::LimitReached`] with
    /// [`SearchStats::cancelled`] set) when its token is cancelled or its
    /// deadline passes.
    pub fn run_with(&mut self, control: &mut SearchControl<'_>) -> SearchOutcome {
        let start = Instant::now();
        let phase = control.current_phase();
        let granularity = control.granularity();
        let mut expanded_since_event = 0usize;
        control.emit(ProgressEvent::PhaseStarted { phase });
        let mut worklist: VecDeque<usize> = VecDeque::new();
        for state in self.product.initial_states() {
            let id = self.add_node(state, None, self.product.task.opening_service());
            worklist.push_back(id);
        }
        let outcome = loop {
            let Some(id) = worklist.pop_front() else {
                break SearchOutcome::Exhausted;
            };
            if !self.nodes[id].active {
                continue;
            }
            if control.should_stop() {
                self.stats.limit_reached = true;
                self.stats.cancelled = true;
                break SearchOutcome::LimitReached;
            }
            if self.nodes.len() >= self.limits.max_states
                || start.elapsed().as_millis() as u64 >= self.limits.max_millis
            {
                self.stats.limit_reached = true;
                break SearchOutcome::LimitReached;
            }
            expanded_since_event += 1;
            if expanded_since_event >= granularity {
                expanded_since_event = 0;
                control.emit(ProgressEvent::Progress {
                    phase,
                    states_created: self.stats.states_created,
                    frontier: worklist.len(),
                    accelerations: self.stats.accelerations,
                });
            }
            let current = self.nodes[id].state.clone();
            let successors = self.product.successors(&current, &mut self.interner);
            let mut finite_violation = None;
            for succ in successors {
                let mut state = succ.state;
                // ω-acceleration against the active ancestors.
                let mut ancestor = Some(id);
                while let Some(a) = ancestor {
                    if self.nodes[a].active {
                        if let Some(counters) =
                            accelerate(self.coverage, &self.nodes[a].state, &state, &self.interner)
                        {
                            state.psi.counters = counters;
                            self.stats.accelerations += 1;
                        }
                    }
                    ancestor = self.nodes[a].parent;
                }
                if succ.finite_violation {
                    let vid = self.add_node(state, Some(id), succ.service);
                    finite_violation = Some(vid);
                    break;
                }
                // Skip if an active state already covers the new one.
                if self.covered_by_active(&state) {
                    self.stats.states_skipped += 1;
                    continue;
                }
                // Monotone pruning: deactivate active states (and their
                // descendants) covered by the new one, except ancestors of
                // the node being extended (conservative variant of the
                // Reynier–Servais rule).
                self.prune_covered(&state, id);
                let new_id = self.add_node(state, Some(id), succ.service);
                worklist.push_back(new_id);
            }
            if let Some(vid) = finite_violation {
                break SearchOutcome::FiniteViolation(vid);
            }
        };
        self.stats.states_active = self.nodes.iter().filter(|n| n.active).count();
        self.stats.stored_types = self.interner.len();
        self.stats.elapsed_ms = start.elapsed().as_millis() as u64;
        control.emit(ProgressEvent::PhaseFinished {
            phase,
            stats: self.stats,
        });
        outcome
    }

    fn add_node(
        &mut self,
        state: ProductState,
        parent: Option<usize>,
        service: ServiceRef,
    ) -> usize {
        let id = self.nodes.len();
        if self.use_index {
            self.index.insert(id, &state, &self.interner);
        }
        self.nodes.push(SearchNode {
            state,
            parent,
            service,
            active: true,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(id);
        }
        self.stats.states_created += 1;
        id
    }

    /// Is the candidate state covered by some active state?
    fn covered_by_active(&self, state: &ProductState) -> bool {
        if self.use_index {
            // Candidates whose signature is a subset of the query's — the
            // only ones that can be less restrictive (and hence cover it).
            self.index
                .subset_candidates(state, &self.interner)
                .into_iter()
                .any(|j| {
                    self.nodes[j].active
                        && covers(self.coverage, state, &self.nodes[j].state, &self.interner)
                })
        } else {
            self.nodes
                .iter()
                .any(|n| n.active && covers(self.coverage, state, &n.state, &self.interner))
        }
    }

    /// Deactivate the active states covered by `state` together with their
    /// descendants, skipping the ancestors of `extending` (the branch being
    /// extended).
    fn prune_covered(&mut self, state: &ProductState, extending: usize) {
        let mut ancestors = std::collections::HashSet::new();
        let mut a = Some(extending);
        while let Some(x) = a {
            ancestors.insert(x);
            a = self.nodes[x].parent;
        }
        let candidates: Vec<usize> = if self.use_index {
            self.index
                .superset_candidates(state, &self.interner)
                .into_iter()
                .filter(|&j| self.nodes[j].active)
                .collect()
        } else {
            (0..self.nodes.len())
                .filter(|&j| self.nodes[j].active)
                .collect()
        };
        let mut to_prune = Vec::new();
        for j in candidates {
            if ancestors.contains(&j) {
                continue;
            }
            if covers(self.coverage, &self.nodes[j].state, state, &self.interner) {
                to_prune.push(j);
            }
        }
        for j in to_prune {
            self.deactivate_subtree(j, &ancestors);
        }
    }

    fn deactivate_subtree(&mut self, root: usize, protected: &std::collections::HashSet<usize>) {
        let mut stack = vec![root];
        while let Some(j) = stack.pop() {
            if protected.contains(&j) || !self.nodes[j].active {
                continue;
            }
            self.nodes[j].active = false;
            self.stats.states_pruned += 1;
            if self.use_index {
                self.index.remove(j);
            }
            stack.extend(self.nodes[j].children.iter().copied());
        }
    }

    /// Indices of the nodes still active at the end of the search (the
    /// coverability-set candidates).
    pub fn active_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].active)
            .collect()
    }

    /// The path of services and states from an initial node to `node`
    /// (inclusive), oldest first — used to build counterexample traces.
    pub fn trace(&self, node: usize) -> Vec<(ServiceRef, ProductState)> {
        let mut out = Vec::new();
        let mut current = Some(node);
        while let Some(i) = current {
            out.push((self.nodes[i].service, self.nodes[i].state.clone()));
            current = self.nodes[i].parent;
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_ltl::{Ltl, LtlFoProperty};
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, TaskId, Term, Update,
    };

    /// The unbounded-pool workflow: statuses cycle and every cycle inserts
    /// a tuple, so the counter grows without bound and acceleration must
    /// kick in for the search to terminate.
    fn unbounded_pool() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        let pool = root.art_relation_like("POOL", &[status]);
        root.service_parts(
            "produce",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Made")),
            vec![],
            None,
        );
        root.service_parts(
            "stash",
            Condition::eq(Term::var(status), Term::str("Made")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            Some(Update::Insert {
                rel: pool,
                vars: vec![status],
            }),
        );
        let mut b = SpecBuilder::new("unbounded", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    fn trivial_property() -> LtlFoProperty {
        LtlFoProperty::new("false-baseline", TaskId::new(0), vec![], Ltl::False, vec![])
    }

    #[test]
    fn search_terminates_on_unbounded_counters_via_acceleration() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            CoverageKind::Subsumption,
            true,
            SearchLimits {
                max_states: 5_000,
                max_millis: 30_000,
            },
        );
        let outcome = search.run();
        assert_eq!(outcome, SearchOutcome::Exhausted);
        assert!(search.stats.accelerations > 0, "acceleration must fire");
        assert!(search.stats.states_created < 100);
    }

    #[test]
    fn standard_coverage_also_terminates_here() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            CoverageKind::Standard,
            false,
            SearchLimits::default(),
        );
        assert_eq!(search.run(), SearchOutcome::Exhausted);
    }

    #[test]
    fn trace_walks_back_to_an_initial_state() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            CoverageKind::Subsumption,
            false,
            SearchLimits::default(),
        );
        search.run();
        let last = search.nodes.len() - 1;
        let trace = search.trace(last);
        assert!(!trace.is_empty());
        assert_eq!(trace[0].0, product.task.opening_service());
    }

    #[test]
    fn limits_stop_the_search() {
        let spec = unbounded_pool();
        let property = trivial_property();
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut search = KarpMillerSearch::new(
            &product,
            // Equality pruning cannot cope with unbounded counters, so the
            // node limit must trigger.
            CoverageKind::Equality,
            false,
            SearchLimits {
                max_states: 50,
                max_millis: 10_000,
            },
        );
        assert_eq!(search.run(), SearchOutcome::LimitReached);
        assert!(search.stats.limit_reached);
    }
}
