//! Product of the symbolic transition system with the Büchi automaton of
//! the negated property (Section 3.2, "Verification therefore amounts to
//! solving the SRR problem").
//!
//! A product state pairs a partial symbolic instance with a state of the
//! violation automaton (the Büchi automaton of the negated,
//! finite-trace-embedded property).  Product transitions interleave a
//! symbolic transition with an automaton transition whose label is
//! *enforced* on the new instance:
//!
//! * service propositions must match the service that caused the
//!   transition,
//! * condition propositions required true (resp. false) extend the new type
//!   with the condition (resp. its negation) through `eval`,
//! * the reserved `alive` proposition is true on every real transition.
//!
//! A product state reached by the verified task's own closing service ends
//! the local run; it is a *finite violation* iff the automaton can complete
//! an accepting run on the infinite padding that follows (pre-computed per
//! automaton state).  Infinite violations are accepting cycles found by the
//! repeated-reachability analysis.

use crate::delta::MemoScope;
use crate::eval::{compile_condition, extend_all, CompiledCondition};
use crate::pit::Pit;
use crate::psi::{InternTypes, Psi, StoredTypeId};
use crate::transition::SymbolicTask;
use std::collections::HashSet;
use std::sync::Arc;
use verifas_ltl::{LtlFoProperty, PropAtom, PropertyAutomaton};
use verifas_model::{Condition, HasSpec, ModelError, ServiceRef};

/// A state of the product system.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProductState {
    /// The partial symbolic instance.
    pub psi: Psi,
    /// The violation-automaton state.
    pub buchi: usize,
    /// `true` iff the local run has ended (the task closed); closed states
    /// have no successors.
    pub closed: bool,
}

/// A borrowed, allocation-free view of a product state: the shape every
/// coverage test and index query operates on, so states kept in the
/// structure-of-arrays [`crate::arena::StateArena`] can be compared
/// without materialising owned [`ProductState`] values.
#[derive(Debug, Clone, Copy)]
pub struct StateView<'a> {
    /// The partial isomorphism type.
    pub pit: &'a Pit,
    /// The stored-tuple counters: non-zero entries sorted by type id.
    pub counters: &'a [(StoredTypeId, u32)],
    /// Bitmask over the task's children: bit `i` set iff active.
    pub child_active: u64,
    /// The violation-automaton state.
    pub buchi: usize,
    /// `true` iff the local run has ended.
    pub closed: bool,
}

impl ProductState {
    /// A borrowed view of this state.
    pub fn view(&self) -> StateView<'_> {
        StateView {
            pit: &self.psi.pit,
            counters: self.psi.counters.as_slice(),
            child_active: self.psi.child_active,
            buchi: self.buchi,
            closed: self.closed,
        }
    }
}

/// One product successor.
#[derive(Debug, Clone)]
pub struct ProductSuccessor {
    /// The observable service that caused the transition.
    pub service: ServiceRef,
    /// The successor state.
    pub state: ProductState,
    /// `true` iff the transition closes the task and the automaton accepts
    /// the padded continuation — i.e. a *finite* violating local run has
    /// been found.
    pub finite_violation: bool,
}

/// The product system explored by the Karp–Miller search.
#[derive(Debug, Clone)]
pub struct ProductSystem {
    /// The compiled symbolic task.
    pub task: SymbolicTask,
    /// The violation automaton of the property.
    pub automaton: PropertyAutomaton,
    /// The property being verified.
    pub property: LtlFoProperty,
    prop_pos: Vec<Option<CompiledCondition>>,
    prop_neg: Vec<Option<CompiledCondition>>,
    prop_service: Vec<Option<ServiceRef>>,
    /// Replay-mode transition memo (see [`crate::delta`]): when set, every
    /// spec-side successor enumeration is served from — or recorded into —
    /// the session's [`MemoScope`] for this task and removed-edge set.
    memo: Option<Arc<MemoScope>>,
}

impl ProductSystem {
    /// Build the product system for a property of a task of `spec`.
    ///
    /// `include_sets = false` gives the `VERIFAS-NoSet` configuration
    /// (artifact-relation updates ignored).
    pub fn new(
        spec: &HasSpec,
        property: &LtlFoProperty,
        include_sets: bool,
    ) -> Result<Self, ModelError> {
        property.validate(spec)?;
        let conditions: Vec<Condition> = property
            .props
            .iter()
            .filter_map(|p| match p {
                PropAtom::Condition(c) => Some(c.clone()),
                PropAtom::Service(_) => None,
            })
            .collect();
        let task = SymbolicTask::new(
            spec,
            property.task,
            &conditions,
            &property.global_vars,
            include_sets,
        );
        Self::with_task(task, property)
    }

    /// Build the product from a pre-compiled symbolic task.
    ///
    /// The task must belong to the property's task and its expression
    /// universe must contain every constant of the property's conditions
    /// and an expression per global variable of the property —
    /// `verifas::Engine` uses this to compile the task once and share it
    /// across the properties of a batch.
    pub fn with_task(task: SymbolicTask, property: &LtlFoProperty) -> Result<Self, ModelError> {
        property.validate(&task.spec)?;
        Ok(Self::with_task_prevalidated(task, property))
    }

    /// [`ProductSystem::with_task`] for callers that have already
    /// validated the property against the task's spec (the engine
    /// validates once per request).
    pub(crate) fn with_task_prevalidated(task: SymbolicTask, property: &LtlFoProperty) -> Self {
        let automaton = PropertyAutomaton::for_violations(&property.formula, property.alive_prop());
        let mut prop_pos = Vec::new();
        let mut prop_neg = Vec::new();
        let mut prop_service = Vec::new();
        for atom in &property.props {
            match atom {
                PropAtom::Condition(c) => {
                    prop_pos.push(Some(compile_condition(c, &task.universe)));
                    prop_neg.push(Some(compile_condition(
                        &Condition::not(c.clone()).nnf(),
                        &task.universe,
                    )));
                    prop_service.push(None);
                }
                PropAtom::Service(s) => {
                    prop_pos.push(None);
                    prop_neg.push(None);
                    prop_service.push(Some(*s));
                }
            }
        }
        ProductSystem {
            task,
            automaton,
            property: property.clone(),
            prop_pos,
            prop_neg,
            prop_service,
            memo: None,
        }
    }

    /// Set the non-violating edges computed by the static analysis.
    pub fn set_static_removed(&mut self, removed: HashSet<crate::pit::Edge>) {
        self.task.static_removed = removed;
    }

    /// Install a replay-mode transition memo.  Must be scoped to the
    /// *final* removed-edge set (install after
    /// [`ProductSystem::set_static_removed`]): the removed set is read
    /// during enumeration, so recorded successors are only valid under the
    /// removed set they were recorded with.
    pub(crate) fn set_memo(&mut self, memo: Arc<MemoScope>) {
        self.memo = Some(memo);
    }

    /// `true` iff the automaton state of a product state is accepting
    /// (candidate for an infinite violation through repeated reachability).
    pub fn is_accepting(&self, state: &ProductState) -> bool {
        self.automaton.buchi.accepting[state.buchi]
    }

    /// [`ProductSystem::is_accepting`] over a borrowed arena view.
    pub fn is_accepting_view(&self, state: StateView<'_>) -> bool {
        self.automaton.buchi.accepting[state.buchi]
    }

    /// Enforce the label of automaton state `q` on the candidate types of a
    /// transition caused by `service`.  Returns the surviving extended
    /// types (empty when the label is incompatible with the service or the
    /// types).
    fn enforce_label(&self, q: usize, service: ServiceRef, pits: Vec<Pit>) -> Vec<Pit> {
        let label = &self.automaton.buchi.labels[q];
        if label.requires_false(self.automaton.alive) {
            return Vec::new();
        }
        let mut pits = pits;
        for (i, svc) in self.prop_service.iter().enumerate() {
            let p = i as u32;
            if !label.requires_true(p) && !label.requires_false(p) {
                continue;
            }
            match svc {
                Some(s) => {
                    let holds = *s == service;
                    if (label.requires_true(p) && !holds) || (label.requires_false(p) && holds) {
                        return Vec::new();
                    }
                }
                None => {
                    let compiled = if label.requires_true(p) {
                        self.prop_pos[i].as_ref()
                    } else {
                        self.prop_neg[i].as_ref()
                    };
                    if let Some(compiled) = compiled {
                        pits = extend_all(
                            pits,
                            compiled,
                            &self.task.universe,
                            &self.task.static_removed,
                        );
                        if pits.is_empty() {
                            return pits;
                        }
                    }
                }
            }
        }
        pits
    }

    /// The initial product states: the verified task opens (the first
    /// letter of every local run) while the automaton takes one of its
    /// initial transitions.
    pub fn initial_states(&self) -> Vec<ProductState> {
        let service = self.task.opening_service();
        let mut out = Vec::new();
        for pit in self.task.initial_pits() {
            for &q in &self.automaton.buchi.initial {
                for extended in self.enforce_label(q, service, vec![pit.clone()]) {
                    out.push(ProductState {
                        psi: Psi::with_pit(extended),
                        buchi: q,
                        closed: false,
                    });
                }
            }
        }
        out
    }

    /// All product successors of a state.
    pub fn successors(
        &self,
        state: &ProductState,
        interner: &mut dyn InternTypes,
    ) -> Vec<ProductSuccessor> {
        let mut out = Vec::new();
        self.successors_into(state, interner, &mut out);
        out
    }

    /// [`ProductSystem::successors`] writing into a caller-owned buffer.
    ///
    /// The buffer is cleared first.  Tight loops that enumerate the
    /// successors of many states (the repeated-reachability edge
    /// construction visits every active state) reuse one buffer instead of
    /// allocating a fresh `Vec` per state.
    pub fn successors_into(
        &self,
        state: &ProductState,
        interner: &mut dyn InternTypes,
        out: &mut Vec<ProductSuccessor>,
    ) {
        out.clear();
        if state.closed {
            return;
        }
        // The spec-side enumeration dominates the cost of a product step;
        // in replay mode it is served from the session memo when this
        // resolved instance was enumerated before (bit-identical by
        // construction — see `crate::delta`).  The automaton composition
        // below is cheap and always recomputed.
        let spec_succs = match &self.memo {
            Some(memo) => memo.successors(&self.task, &state.psi, interner),
            None => self.task.successors(&state.psi, interner),
        };
        for (service, psi) in spec_succs {
            let closes = self.task.is_own_closing(service);
            for &q in &self.automaton.buchi.transitions[state.buchi] {
                for pit in self.enforce_label(q, service, vec![psi.pit.clone()]) {
                    let finite_violation = closes && self.automaton.padding_accepting[q];
                    out.push(ProductSuccessor {
                        service,
                        state: ProductState {
                            psi: Psi {
                                pit,
                                counters: psi.counters.clone(),
                                child_active: psi.child_active,
                            },
                            buchi: q,
                            closed: closes,
                        },
                        finite_violation,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psi::StoredTypeInterner;
    use verifas_ltl::Ltl;
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DatabaseSchema, SpecBuilder, TaskBuilder, TaskId, Term, VarType,
    };

    /// A one-task flow: status goes null -> "Working" -> "Done" and loops
    /// back to null.
    fn flow_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        root.service_parts(
            "begin",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Working")),
            vec![],
            None,
        );
        root.service_parts(
            "finish",
            Condition::eq(Term::var(status), Term::str("Working")),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        root.service_parts(
            "reset",
            Condition::eq(Term::var(status), Term::str("Done")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("flow", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    fn status_is(v: &str) -> Condition {
        Condition::eq(Term::var(verifas_model::VarId::new(0)), Term::str(v))
    }

    #[test]
    fn product_initial_states_and_successors() {
        let spec = flow_spec();
        // Property: G ¬(status = "Broken") — trivially satisfied, so the
        // violation automaton should still produce a searchable product.
        let property = LtlFoProperty::new(
            "no-broken",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Broken"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let initial = product.initial_states();
        assert!(!initial.is_empty());
        let mut interner = StoredTypeInterner::new();
        let succs = product.successors(&initial[0], &mut interner);
        // Only `begin` is enabled initially, but the automaton may offer
        // several branches; every successor must be via `begin`.
        assert!(!succs.is_empty());
        assert!(succs
            .iter()
            .all(|s| matches!(s.service, ServiceRef::Internal { index: 0, .. })));
        // The root never closes, so no finite violation can be flagged.
        assert!(succs.iter().all(|s| !s.finite_violation));
    }

    #[test]
    fn violating_condition_is_enforced_on_the_type() {
        let spec = flow_spec();
        // Property: G ¬(status = "Done") — violated; the violating branch
        // requires a state whose type contains status = "Done".
        let property = LtlFoProperty::new(
            "never-done",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Done"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut interner = StoredTypeInterner::new();
        // Walk: init -> begin -> finish; after `finish` some product branch
        // must be accepting (the automaton saw status = "Done").
        let mut frontier = product.initial_states();
        for _ in 0..2 {
            let mut next = Vec::new();
            for s in &frontier {
                next.extend(
                    product
                        .successors(s, &mut interner)
                        .into_iter()
                        .map(|s| s.state),
                );
            }
            frontier = next;
            assert!(!frontier.is_empty());
        }
        assert!(frontier.iter().any(|s| product.is_accepting(s)));
    }

    #[test]
    fn service_propositions_filter_transitions() {
        let spec = flow_spec();
        // Property: G ¬σ_finish ("finish is never applied") — the violating
        // automaton requires seeing the finish service.
        let finish = ServiceRef::Internal {
            task: TaskId::new(0),
            index: 1,
        };
        let property = LtlFoProperty::new(
            "never-finish",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Service(finish)],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut interner = StoredTypeInterner::new();
        let initial = product.initial_states();
        assert!(!initial.is_empty());
        // After begin, the `finish` transition must lead to an accepting
        // automaton state on some branch.
        let mut accepting_seen = false;
        for s0 in &initial {
            for s1 in product.successors(s0, &mut interner) {
                for s2 in product.successors(&s1.state, &mut interner) {
                    if s2.service == finish && product.is_accepting(&s2.state) {
                        accepting_seen = true;
                    }
                }
            }
        }
        assert!(accepting_seen);
    }

    #[test]
    fn global_variable_types_extend_the_universe() {
        let spec = flow_spec();
        let property = LtlFoProperty::new(
            "with-global",
            TaskId::new(0),
            vec![VarType::Data],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(Condition::eq(
                Term::var(verifas_model::VarId::new(0)),
                Term::global(0),
            ))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        assert!(product
            .task
            .universe
            .var_expr(verifas_model::VarRef::Global(0))
            .is_some());
        assert!(!product.initial_states().is_empty());
    }
}
