//! Structured verification requests and reports.
//!
//! A [`VerificationReport`] is the machine-readable result of one
//! [`crate::engine::Engine`] run: the verdict, a structured counterexample
//! witness path (when the property is violated), per-phase
//! [`SearchStats`], the options that were in effect and whether the run
//! was cancelled.  Reports serialize to and parse from JSON
//! ([`VerificationReport::to_json`] / [`VerificationReport::from_json`])
//! so a verification service can ship them across process boundaries and
//! archive them; the format is versioned through the `schema` member.

use crate::error::VerifasError;
use crate::json::Json;
use crate::repeated::CycleStats;
use crate::schedule::{OccupancySample, SchedulePolicy, ScheduleStats};
use crate::search::{SearchLimits, SearchStats, WorkerStats};
use crate::verifier::{VerificationOutcome, VerificationResult, VerifierOptions};
use verifas_model::{HasSpec, ServiceRef, TaskId};

/// Version tag written into every serialized report.
///
/// Version 2 added the effective thread count ([`SearchStats::threads`],
/// `VerifierOptions::search_threads`) and the per-worker statistics
/// (`workers`).  Version 3 added the repeated-reachability cycle-detection
/// block (`repeated_cycle`, see [`CycleStats`]).  Version 4 added the
/// batch-scheduling block (`schedule`, see [`ScheduleStats`]): the batch's
/// policy and core budget plus the property's start/finish times and
/// core-occupancy timeline.
pub const REPORT_SCHEMA_VERSION: u64 = 4;

/// One observable service occurrence on a witness path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// The service that fired.
    pub service: ServiceRef,
    /// The service rendered with task/service names.
    pub label: String,
}

/// A structured counterexample: the violating symbolic local run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The observable services of the violating run, oldest first (for an
    /// infinite violation, the prefix leading to the repeated state).
    pub steps: Vec<WitnessStep>,
    /// `true` for a finite violating run (the task closes), `false` for an
    /// infinite one.
    pub finite: bool,
    /// Human-readable rendering of the whole run (including, for infinite
    /// violations, why the final state repeats).
    pub description: String,
}

/// The machine-readable result of one verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Name of the verified property.
    pub property: String,
    /// Name of the task whose local runs were verified.
    pub task: String,
    /// The verdict.
    pub outcome: VerificationOutcome,
    /// The counterexample witness, when the property is violated.
    pub witness: Option<Witness>,
    /// Statistics of the main reachability phase.
    pub stats: SearchStats,
    /// Statistics of the repeated-reachability phase (when it ran).
    pub repeated_stats: Option<SearchStats>,
    /// Statistics of the repeated-reachability cycle-detection pass: the
    /// abstract-graph size, the candidate-filter hit rate and the
    /// edge-construction/SCC timings (when the pass ran).
    pub repeated_cycle: Option<CycleStats>,
    /// Per-worker statistics across both phases (empty for sequential
    /// engines that did not track them).
    pub workers: Vec<WorkerStats>,
    /// How this run was scheduled within its batch — policy, core budget
    /// and the core-occupancy timeline (None for single-property runs,
    /// which are not batch-scheduled).
    pub schedule: Option<ScheduleStats>,
    /// The options that were in effect for this run.
    pub options: VerifierOptions,
    /// `true` when the run was stopped by cancellation or a deadline.
    /// The outcome is then usually `Inconclusive`; a definite `Violated`
    /// is still possible when a violation was found before the stop (a
    /// found violation is always sound).
    pub cancelled: bool,
}

impl VerificationReport {
    /// Assemble a report from a raw [`VerificationResult`].
    pub fn from_result(
        spec: &HasSpec,
        property_name: &str,
        task: TaskId,
        options: VerifierOptions,
        result: VerificationResult,
    ) -> Self {
        let witness = result.counterexample.map(|cex| Witness {
            steps: cex
                .services
                .iter()
                .map(|&service| WitnessStep {
                    service,
                    label: spec.service_name(service),
                })
                .collect(),
            finite: cex.finite,
            description: cex.description,
        });
        let cancelled =
            result.stats.cancelled || result.repeated_stats.is_some_and(|s| s.cancelled);
        VerificationReport {
            property: property_name.to_owned(),
            task: spec.task(task).name.clone(),
            outcome: result.outcome,
            witness,
            stats: result.stats,
            repeated_stats: result.repeated_stats,
            repeated_cycle: result.repeated_cycle,
            workers: result.worker_stats,
            schedule: None,
            options,
            cancelled,
        }
    }

    /// Total elapsed time across phases, in milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        self.stats.elapsed_ms + self.repeated_stats.map_or(0, |s| s.elapsed_ms)
    }

    /// Serialize to a single-line JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The report as a [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        let mut members = vec![
            ("schema".to_owned(), Json::Num(REPORT_SCHEMA_VERSION as f64)),
            ("property".to_owned(), Json::Str(self.property.clone())),
            ("task".to_owned(), Json::Str(self.task.clone())),
            (
                "outcome".to_owned(),
                Json::Str(outcome_name(self.outcome).to_owned()),
            ),
            (
                "witness".to_owned(),
                match &self.witness {
                    None => Json::Null,
                    Some(w) => witness_to_json(w),
                },
            ),
            ("stats".to_owned(), stats_to_json(&self.stats)),
            (
                "repeated_stats".to_owned(),
                match &self.repeated_stats {
                    None => Json::Null,
                    Some(s) => stats_to_json(s),
                },
            ),
            (
                "repeated_cycle".to_owned(),
                match &self.repeated_cycle {
                    None => Json::Null,
                    Some(c) => cycle_stats_to_json(c),
                },
            ),
            (
                "workers".to_owned(),
                Json::Arr(self.workers.iter().map(worker_stats_to_json).collect()),
            ),
            (
                "schedule".to_owned(),
                match &self.schedule {
                    None => Json::Null,
                    Some(s) => schedule_stats_to_json(s),
                },
            ),
            ("options".to_owned(), options_to_json(&self.options)),
        ];
        members.push(("cancelled".to_owned(), Json::Bool(self.cancelled)));
        Json::Obj(members)
    }

    /// Parse a report serialized with [`VerificationReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, VerifasError> {
        let doc = Json::parse(text)?;
        let schema = doc
            .require("schema")?
            .as_u64()
            .ok_or_else(|| malformed("schema"))?;
        if schema != REPORT_SCHEMA_VERSION {
            return Err(VerifasError::MalformedReport {
                reason: format!(
                    "unsupported schema version {schema} (expected {REPORT_SCHEMA_VERSION})"
                ),
            });
        }
        Ok(VerificationReport {
            property: str_member(&doc, "property")?,
            task: str_member(&doc, "task")?,
            outcome: outcome_from_json(doc.require("outcome")?)?,
            witness: match doc.require("witness")? {
                Json::Null => None,
                w => Some(witness_from_json(w)?),
            },
            stats: stats_from_json(doc.require("stats")?)?,
            repeated_stats: match doc.require("repeated_stats")? {
                Json::Null => None,
                s => Some(stats_from_json(s)?),
            },
            repeated_cycle: match doc.require("repeated_cycle")? {
                Json::Null => None,
                c => Some(cycle_stats_from_json(c)?),
            },
            workers: doc
                .require("workers")?
                .as_array()
                .ok_or_else(|| malformed("workers"))?
                .iter()
                .map(worker_stats_from_json)
                .collect::<Result<Vec<_>, VerifasError>>()?,
            schedule: match doc.require("schedule")? {
                Json::Null => None,
                s => Some(schedule_stats_from_json(s)?),
            },
            options: options_from_json(doc.require("options")?)?,
            cancelled: bool_member(&doc, "cancelled")?,
        })
    }
}

fn malformed(what: &str) -> VerifasError {
    VerifasError::MalformedReport {
        reason: format!("member {what:?} is missing or has the wrong type"),
    }
}

fn str_member(doc: &Json, key: &str) -> Result<String, VerifasError> {
    doc.require(key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| malformed(key))
}

fn bool_member(doc: &Json, key: &str) -> Result<bool, VerifasError> {
    doc.require(key)?.as_bool().ok_or_else(|| malformed(key))
}

fn u64_member(doc: &Json, key: &str) -> Result<u64, VerifasError> {
    doc.require(key)?.as_u64().ok_or_else(|| malformed(key))
}

fn outcome_name(outcome: VerificationOutcome) -> &'static str {
    match outcome {
        VerificationOutcome::Satisfied => "satisfied",
        VerificationOutcome::Violated => "violated",
        VerificationOutcome::Inconclusive => "inconclusive",
    }
}

fn outcome_from_json(value: &Json) -> Result<VerificationOutcome, VerifasError> {
    match value.as_str() {
        Some("satisfied") => Ok(VerificationOutcome::Satisfied),
        Some("violated") => Ok(VerificationOutcome::Violated),
        Some("inconclusive") => Ok(VerificationOutcome::Inconclusive),
        _ => Err(malformed("outcome")),
    }
}

fn service_to_json(service: ServiceRef) -> Json {
    match service {
        ServiceRef::Internal { task, index } => Json::Obj(vec![
            ("kind".to_owned(), Json::Str("internal".to_owned())),
            ("task".to_owned(), Json::Num(task.index() as f64)),
            ("index".to_owned(), Json::Num(index as f64)),
        ]),
        ServiceRef::Opening(task) => Json::Obj(vec![
            ("kind".to_owned(), Json::Str("opening".to_owned())),
            ("task".to_owned(), Json::Num(task.index() as f64)),
        ]),
        ServiceRef::Closing(task) => Json::Obj(vec![
            ("kind".to_owned(), Json::Str("closing".to_owned())),
            ("task".to_owned(), Json::Num(task.index() as f64)),
        ]),
    }
}

fn service_from_json(value: &Json) -> Result<ServiceRef, VerifasError> {
    let task = TaskId::new(u64_member(value, "task")? as u32);
    match value.require("kind")?.as_str() {
        Some("internal") => Ok(ServiceRef::Internal {
            task,
            index: u64_member(value, "index")? as usize,
        }),
        Some("opening") => Ok(ServiceRef::Opening(task)),
        Some("closing") => Ok(ServiceRef::Closing(task)),
        _ => Err(malformed("service.kind")),
    }
}

fn witness_to_json(witness: &Witness) -> Json {
    Json::Obj(vec![
        (
            "steps".to_owned(),
            Json::Arr(
                witness
                    .steps
                    .iter()
                    .map(|step| {
                        Json::Obj(vec![
                            ("service".to_owned(), service_to_json(step.service)),
                            ("label".to_owned(), Json::Str(step.label.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("finite".to_owned(), Json::Bool(witness.finite)),
        (
            "description".to_owned(),
            Json::Str(witness.description.clone()),
        ),
    ])
}

fn witness_from_json(value: &Json) -> Result<Witness, VerifasError> {
    let steps = value
        .require("steps")?
        .as_array()
        .ok_or_else(|| malformed("witness.steps"))?
        .iter()
        .map(|step| {
            Ok(WitnessStep {
                service: service_from_json(step.require("service")?)?,
                label: str_member(step, "label")?,
            })
        })
        .collect::<Result<Vec<_>, VerifasError>>()?;
    Ok(Witness {
        steps,
        finite: bool_member(value, "finite")?,
        description: str_member(value, "description")?,
    })
}

fn stats_to_json(stats: &SearchStats) -> Json {
    Json::Obj(vec![
        (
            "states_created".to_owned(),
            Json::Num(stats.states_created as f64),
        ),
        (
            "states_active".to_owned(),
            Json::Num(stats.states_active as f64),
        ),
        (
            "states_skipped".to_owned(),
            Json::Num(stats.states_skipped as f64),
        ),
        (
            "states_pruned".to_owned(),
            Json::Num(stats.states_pruned as f64),
        ),
        (
            "accelerations".to_owned(),
            Json::Num(stats.accelerations as f64),
        ),
        (
            "stored_types".to_owned(),
            Json::Num(stats.stored_types as f64),
        ),
        ("elapsed_ms".to_owned(), Json::Num(stats.elapsed_ms as f64)),
        ("threads".to_owned(), Json::Num(stats.threads as f64)),
        ("limit_reached".to_owned(), Json::Bool(stats.limit_reached)),
        ("cancelled".to_owned(), Json::Bool(stats.cancelled)),
    ])
}

fn cycle_stats_to_json(stats: &CycleStats) -> Json {
    Json::Obj(vec![
        ("states".to_owned(), Json::Num(stats.states as f64)),
        ("successors".to_owned(), Json::Num(stats.successors as f64)),
        ("candidates".to_owned(), Json::Num(stats.candidates as f64)),
        ("edges".to_owned(), Json::Num(stats.edges as f64)),
        ("sccs".to_owned(), Json::Num(stats.sccs as f64)),
        (
            "cyclic_states".to_owned(),
            Json::Num(stats.cyclic_states as f64),
        ),
        ("threads".to_owned(), Json::Num(stats.threads as f64)),
        ("used_index".to_owned(), Json::Bool(stats.used_index)),
        (
            "edge_micros".to_owned(),
            Json::Num(stats.edge_micros as f64),
        ),
        ("scc_micros".to_owned(), Json::Num(stats.scc_micros as f64)),
        ("completed".to_owned(), Json::Bool(stats.completed)),
    ])
}

fn cycle_stats_from_json(value: &Json) -> Result<CycleStats, VerifasError> {
    Ok(CycleStats {
        states: u64_member(value, "states")? as usize,
        successors: u64_member(value, "successors")? as usize,
        candidates: u64_member(value, "candidates")? as usize,
        edges: u64_member(value, "edges")? as usize,
        sccs: u64_member(value, "sccs")? as usize,
        cyclic_states: u64_member(value, "cyclic_states")? as usize,
        threads: u64_member(value, "threads")? as usize,
        used_index: bool_member(value, "used_index")?,
        edge_micros: u64_member(value, "edge_micros")?,
        scc_micros: u64_member(value, "scc_micros")?,
        completed: bool_member(value, "completed")?,
    })
}

fn schedule_stats_to_json(stats: &ScheduleStats) -> Json {
    Json::Obj(vec![
        (
            "policy".to_owned(),
            Json::Str(stats.policy.name().to_owned()),
        ),
        (
            "batch_threads".to_owned(),
            Json::Num(stats.batch_threads as f64),
        ),
        (
            "property_index".to_owned(),
            Json::Num(stats.property_index as f64),
        ),
        ("started_ms".to_owned(), Json::Num(stats.started_ms as f64)),
        (
            "finished_ms".to_owned(),
            Json::Num(stats.finished_ms as f64),
        ),
        (
            "occupancy".to_owned(),
            Json::Arr(
                stats
                    .occupancy
                    .iter()
                    .map(|sample| {
                        Json::Obj(vec![
                            ("at_ms".to_owned(), Json::Num(sample.at_ms as f64)),
                            ("threads".to_owned(), Json::Num(sample.threads as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn schedule_stats_from_json(value: &Json) -> Result<ScheduleStats, VerifasError> {
    let policy = value
        .require("policy")?
        .as_str()
        .and_then(SchedulePolicy::from_name)
        .ok_or_else(|| malformed("schedule.policy"))?;
    let occupancy = value
        .require("occupancy")?
        .as_array()
        .ok_or_else(|| malformed("schedule.occupancy"))?
        .iter()
        .map(|sample| {
            Ok(OccupancySample {
                at_ms: u64_member(sample, "at_ms")?,
                threads: u64_member(sample, "threads")? as usize,
            })
        })
        .collect::<Result<Vec<_>, VerifasError>>()?;
    Ok(ScheduleStats {
        policy,
        batch_threads: u64_member(value, "batch_threads")? as usize,
        property_index: u64_member(value, "property_index")? as usize,
        started_ms: u64_member(value, "started_ms")?,
        finished_ms: u64_member(value, "finished_ms")?,
        occupancy,
    })
}

fn worker_stats_to_json(stats: &WorkerStats) -> Json {
    Json::Obj(vec![
        ("worker".to_owned(), Json::Num(stats.worker as f64)),
        (
            "nodes_planned".to_owned(),
            Json::Num(stats.nodes_planned as f64),
        ),
        (
            "successors_planned".to_owned(),
            Json::Num(stats.successors_planned as f64),
        ),
        (
            "busy_micros".to_owned(),
            Json::Num(stats.busy_micros as f64),
        ),
    ])
}

fn worker_stats_from_json(value: &Json) -> Result<WorkerStats, VerifasError> {
    Ok(WorkerStats {
        worker: u64_member(value, "worker")? as usize,
        nodes_planned: u64_member(value, "nodes_planned")? as usize,
        successors_planned: u64_member(value, "successors_planned")? as usize,
        busy_micros: u64_member(value, "busy_micros")?,
    })
}

fn stats_from_json(value: &Json) -> Result<SearchStats, VerifasError> {
    Ok(SearchStats {
        states_created: u64_member(value, "states_created")? as usize,
        states_active: u64_member(value, "states_active")? as usize,
        states_skipped: u64_member(value, "states_skipped")? as usize,
        states_pruned: u64_member(value, "states_pruned")? as usize,
        accelerations: u64_member(value, "accelerations")? as usize,
        stored_types: u64_member(value, "stored_types")? as usize,
        elapsed_ms: u64_member(value, "elapsed_ms")?,
        threads: u64_member(value, "threads")? as usize,
        limit_reached: bool_member(value, "limit_reached")?,
        cancelled: bool_member(value, "cancelled")?,
    })
}

fn options_to_json(options: &VerifierOptions) -> Json {
    Json::Obj(vec![
        (
            "state_pruning".to_owned(),
            Json::Bool(options.state_pruning),
        ),
        (
            "static_analysis".to_owned(),
            Json::Bool(options.static_analysis),
        ),
        (
            "data_structure_support".to_owned(),
            Json::Bool(options.data_structure_support),
        ),
        (
            "handle_artifact_relations".to_owned(),
            Json::Bool(options.handle_artifact_relations),
        ),
        (
            "check_repeated".to_owned(),
            Json::Bool(options.check_repeated),
        ),
        (
            "search_threads".to_owned(),
            Json::Num(options.search_threads as f64),
        ),
        (
            "limits".to_owned(),
            Json::Obj(vec![
                (
                    "max_states".to_owned(),
                    Json::Num(options.limits.max_states as f64),
                ),
                (
                    "max_millis".to_owned(),
                    Json::Num(options.limits.max_millis as f64),
                ),
            ]),
        ),
        (
            "reference_layout".to_owned(),
            Json::Bool(options.reference_layout),
        ),
        (
            "reference_repeated".to_owned(),
            Json::Bool(options.reference_repeated),
        ),
    ])
}

fn options_from_json(value: &Json) -> Result<VerifierOptions, VerifasError> {
    let limits = value.require("limits")?;
    Ok(VerifierOptions {
        state_pruning: bool_member(value, "state_pruning")?,
        static_analysis: bool_member(value, "static_analysis")?,
        data_structure_support: bool_member(value, "data_structure_support")?,
        handle_artifact_relations: bool_member(value, "handle_artifact_relations")?,
        check_repeated: bool_member(value, "check_repeated")?,
        search_threads: u64_member(value, "search_threads")? as usize,
        limits: SearchLimits {
            max_states: u64_member(limits, "max_states")? as usize,
            max_millis: u64_member(limits, "max_millis")?,
        },
        // Oracle-arm toggles postdate schema v4; documents written before
        // them simply omit the members and default to the real engine.
        reference_layout: value
            .get("reference_layout")
            .map_or(Ok(false), |v| match v {
                Json::Bool(b) => Ok(*b),
                _ => bool_member(value, "reference_layout"),
            })?,
        reference_repeated: value
            .get("reference_repeated")
            .map_or(Ok(false), |v| match v {
                Json::Bool(b) => Ok(*b),
                _ => bool_member(value, "reference_repeated"),
            })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> VerificationReport {
        VerificationReport {
            property: "never-deny".to_owned(),
            task: "Review".to_owned(),
            outcome: VerificationOutcome::Violated,
            witness: Some(Witness {
                steps: vec![
                    WitnessStep {
                        service: ServiceRef::Opening(TaskId::new(1)),
                        label: "open(Review)".to_owned(),
                    },
                    WitnessStep {
                        service: ServiceRef::Internal {
                            task: TaskId::new(1),
                            index: 0,
                        },
                        label: "Review.decide".to_owned(),
                    },
                    WitnessStep {
                        service: ServiceRef::Closing(TaskId::new(1)),
                        label: "close(Review)".to_owned(),
                    },
                ],
                finite: true,
                description: "open(Review) → Review.decide → close(Review)".to_owned(),
            }),
            stats: SearchStats {
                states_created: 17,
                states_active: 9,
                elapsed_ms: 3,
                threads: 4,
                ..SearchStats::default()
            },
            repeated_stats: Some(SearchStats::default()),
            repeated_cycle: Some(CycleStats {
                states: 9,
                successors: 21,
                candidates: 34,
                edges: 12,
                sccs: 4,
                cyclic_states: 6,
                threads: 4,
                used_index: true,
                edge_micros: 2_150,
                scc_micros: 480,
                completed: true,
            }),
            workers: vec![
                WorkerStats {
                    worker: 0,
                    nodes_planned: 9,
                    successors_planned: 14,
                    busy_micros: 2_500,
                },
                WorkerStats {
                    worker: 1,
                    nodes_planned: 8,
                    successors_planned: 11,
                    busy_micros: 2_311,
                },
            ],
            schedule: Some(ScheduleStats {
                policy: SchedulePolicy::Sharded,
                batch_threads: 4,
                property_index: 2,
                started_ms: 1,
                finished_ms: 9,
                occupancy: vec![
                    OccupancySample {
                        at_ms: 1,
                        threads: 1,
                    },
                    OccupancySample {
                        at_ms: 5,
                        threads: 4,
                    },
                ],
            }),
            options: VerifierOptions::default(),
            cancelled: false,
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let report = sample_report();
        let text = report.to_json();
        let parsed = VerificationReport::from_json(&text).unwrap();
        assert_eq!(parsed, report);
        // And the serialization itself is stable.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn missing_members_are_reported_by_name() {
        let err = VerificationReport::from_json(r#"{"schema":4,"property":"p"}"#).unwrap_err();
        match err {
            VerifasError::MalformedReport { reason } => {
                assert!(reason.contains("task"), "{reason:?}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unsupported_schema_versions_are_rejected() {
        let mut report = sample_report().to_json();
        report = report.replacen("\"schema\":4", "\"schema\":99", 1);
        assert!(matches!(
            VerificationReport::from_json(&report),
            Err(VerifasError::MalformedReport { .. })
        ));
    }
}
