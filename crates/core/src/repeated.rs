//! Repeated reachability (Section 3.8 and Appendix C): detecting *infinite*
//! violating local runs.
//!
//! An infinite local run violating the property corresponds to a run of the
//! product system that visits accepting automaton states infinitely often.
//! Following the paper, the analysis works on a coverability-style set of
//! states computed by a Karp–Miller search whose pruning order is the
//! *strict* subsumption `≼⁺` (Definition 31) — the ≼ order alone is too
//! aggressive to preserve completeness of cycle detection.  A state is
//! repeatedly reachable iff
//!
//! * one of its counters is `ω` (the acceleration that produced the `ω`
//!   witnesses a pumpable cycle through the state), or
//! * it lies on a cycle of the abstract transition graph over the active
//!   states, where there is an edge `I → J` whenever some successor of `I`
//!   is covered by `J`.
//!
//! The verifier reports an infinite violation when an *accepting* state is
//! repeatedly reachable.

use crate::coverage::{covers, CoverageKind};
use crate::observer::{Phase, SearchControl};
use crate::product::ProductSystem;
use crate::psi::OMEGA;
use crate::search::{KarpMillerSearch, SearchLimits, SearchOutcome, SearchStats, WorkerStats};
use verifas_model::ServiceRef;

/// Result of the repeated-reachability analysis.
#[derive(Debug, Clone)]
pub struct InfiniteViolation {
    /// The prefix of observable services leading to the repeatedly
    /// reachable accepting state.
    pub prefix: Vec<ServiceRef>,
    /// Human-readable explanation of why the state repeats.
    pub reason: String,
}

/// Outcome of the analysis together with the statistics of the underlying
/// search.
#[derive(Debug, Clone)]
pub struct RepeatedOutcome {
    /// An infinite violation, if one exists (within the limits).
    pub violation: Option<InfiniteViolation>,
    /// Statistics of the auxiliary search.
    pub stats: SearchStats,
    /// `true` when the auxiliary search hit a resource limit (the answer
    /// may then be incomplete).
    pub limit_reached: bool,
    /// `true` when the auxiliary search found a finite violation first
    /// (can happen because it explores the same product).
    pub finite_violation: Option<Vec<ServiceRef>>,
    /// Per-worker statistics of the auxiliary search.
    pub worker_stats: Vec<WorkerStats>,
}

/// Run the repeated-reachability analysis on a product system.
///
/// `coverage` selects the pruning order of the auxiliary search: callers
/// pass [`CoverageKind::StrictSubsumption`] when the main search used the
/// ≼ pruning (Appendix C), [`CoverageKind::Standard`] when it used the
/// classic order, and [`CoverageKind::Equality`] for the baseline verifier.
pub fn find_infinite_violation(
    product: &ProductSystem,
    coverage: CoverageKind,
    use_index: bool,
    limits: SearchLimits,
) -> RepeatedOutcome {
    find_infinite_violation_with(
        product,
        coverage,
        use_index,
        limits,
        1,
        &mut SearchControl::default(),
    )
}

/// Like [`find_infinite_violation`], but observable and cancellable: the
/// auxiliary search emits progress events to the control's observer (under
/// [`Phase::RepeatedReachability`]) and both the search and the cycle
/// detection stop early when the control's token is cancelled or its
/// deadline passes (the outcome then reports `limit_reached`).
pub fn find_infinite_violation_with(
    product: &ProductSystem,
    coverage: CoverageKind,
    use_index: bool,
    limits: SearchLimits,
    threads: usize,
    control: &mut SearchControl<'_>,
) -> RepeatedOutcome {
    control.phase = Some(Phase::RepeatedReachability);
    let mut search = KarpMillerSearch::new(product, coverage, use_index, limits);
    search.threads = threads;
    let outcome = search.run_with(control);
    let mut stats = search.stats;
    let worker_stats = std::mem::take(&mut search.worker_stats);
    if let SearchOutcome::FiniteViolation(node) = outcome {
        let prefix = search.trace(node).into_iter().map(|(s, _)| s).collect();
        return RepeatedOutcome {
            violation: None,
            stats,
            limit_reached: false,
            finite_violation: Some(prefix),
            worker_stats,
        };
    }
    let mut limit_reached = outcome == SearchOutcome::LimitReached;
    let active = search.active_nodes();
    // Rule (a): an accepting active state with an ω counter is repeatedly
    // reachable — the acceleration that produced the ω witnesses a cycle.
    for &i in &active {
        let node = &search.nodes[i];
        if product.is_accepting(&node.state)
            && !node.state.closed
            && node.state.psi.counters.iter().any(|(_, c)| c == OMEGA)
        {
            let prefix = search.trace(i).into_iter().map(|(s, _)| s).collect();
            return RepeatedOutcome {
                violation: Some(InfiniteViolation {
                    prefix,
                    reason: "accepting state with an unbounded (ω) artifact-relation counter"
                        .to_owned(),
                }),
                stats,
                limit_reached,
                finite_violation: None,
                worker_stats,
            };
        }
    }
    // Rule (b): cycle detection over the abstract transition graph of the
    // active states.
    let mut interner = search.interner.clone();
    let n = active.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ai, &i) in active.iter().enumerate() {
        let state = &search.nodes[i].state;
        if state.closed {
            continue;
        }
        if control.should_stop() {
            // Record the interruption on the stats too: the report's
            // `cancelled` flag must distinguish a cancelled/past-deadline
            // run from a genuinely inconclusive one.
            limit_reached = true;
            stats.limit_reached = true;
            stats.cancelled = true;
            break;
        }
        for succ in product.successors(state, &mut interner) {
            for (aj, &j) in active.iter().enumerate() {
                // Note: use the extended interner — the successor may refer
                // to stored types that were first interned just above.
                if covers(coverage, &succ.state, &search.nodes[j].state, &interner) {
                    edges[ai].push(aj);
                }
            }
        }
    }
    for (ai, &i) in active.iter().enumerate() {
        let state = &search.nodes[i].state;
        if !product.is_accepting(state) || state.closed {
            continue;
        }
        // Is `ai` on a cycle (reachable from itself)?
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = edges[ai].clone();
        let mut on_cycle = false;
        while let Some(x) = stack.pop() {
            if x == ai {
                on_cycle = true;
                break;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            stack.extend(edges[x].iter().copied());
        }
        if on_cycle {
            let prefix = search.trace(i).into_iter().map(|(s, _)| s).collect();
            return RepeatedOutcome {
                violation: Some(InfiniteViolation {
                    prefix,
                    reason: "accepting state lies on a cycle of the coverability graph".to_owned(),
                }),
                stats,
                limit_reached,
                finite_violation: None,
                worker_stats,
            };
        }
    }
    RepeatedOutcome {
        violation: None,
        stats,
        limit_reached,
        finite_violation: None,
        worker_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, TaskId, Term,
    };

    /// status cycles null -> "Working" -> "Done" -> null forever.
    fn cycling_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        root.service_parts(
            "begin",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Working")),
            vec![],
            None,
        );
        root.service_parts(
            "finish",
            Condition::eq(Term::var(status), Term::str("Working")),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        root.service_parts(
            "reset",
            Condition::eq(Term::var(status), Term::str("Done")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("cycle", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    fn status_is(v: &str) -> Condition {
        Condition::eq(Term::var(verifas_model::VarId::new(0)), Term::str(v))
    }

    #[test]
    fn violated_invariant_is_found_as_infinite_violation() {
        // G ¬(status = "Done") is violated by the infinite cycling run.
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "never-done",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Done"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_some());
        assert!(!outcome.limit_reached);
    }

    #[test]
    fn satisfied_invariant_has_no_violation() {
        // G ¬(status = "Broken") holds.
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "never-broken",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Broken"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.limit_reached);
    }

    #[test]
    fn liveness_violation_detected() {
        // F (status = "Shipped") is violated: there is an infinite run that
        // never reaches "Shipped" (indeed no run ever does).
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "eventually-shipped",
            TaskId::new(0),
            vec![],
            Ltl::eventually(Ltl::prop(0)),
            vec![PropAtom::Condition(status_is("Shipped"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            false,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_some());
    }

    #[test]
    fn satisfied_response_property() {
        // G (status = "Working" -> F status = "Done") holds for this spec:
        // from "Working" the only applicable service is `finish`, and
        // fairness of local runs means the run either stops being extended
        // (not a run) or eventually fires it.
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "working-leads-to-done",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::eventually(Ltl::prop(1)))),
            vec![
                PropAtom::Condition(status_is("Working")),
                PropAtom::Condition(status_is("Done")),
            ],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_none());
    }
}
