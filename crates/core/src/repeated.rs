//! Repeated reachability (Section 3.8 and Appendix C): detecting *infinite*
//! violating local runs.
//!
//! An infinite local run violating the property corresponds to a run of the
//! product system that visits accepting automaton states infinitely often.
//! Following the paper, the analysis works on a coverability-style set of
//! states computed by a Karp–Miller search whose pruning order is the
//! *strict* subsumption `≼⁺` (Definition 31) — the ≼ order alone is too
//! aggressive to preserve completeness of cycle detection.  A state is
//! repeatedly reachable iff
//!
//! * one of its counters is `ω` (the acceleration that produced the `ω`
//!   witnesses a pumpable cycle through the state), or
//! * it lies on a cycle of the abstract transition graph over the active
//!   states, where there is an edge `I → J` whenever some successor of `I`
//!   is covered by `J`.
//!
//! The verifier reports an infinite violation when an *accepting* state is
//! repeatedly reachable.
//!
//! # The cycle-detection pass
//!
//! Rule (b) above is a graph analysis over the search's final active set
//! and is organised as a single pass in four respects:
//!
//! 1. **No successor re-enumeration.**  The auxiliary search records, for
//!    every node it expands, each product successor's observable service
//!    and pre-acceleration state (see
//!    `KarpMillerSearch::record_successors`).  Re-running the symbolic
//!    transition function — condition evaluation plus congruence closure —
//!    was the dominant cost of the old post-pass; the log replaces it with
//!    a clone made while the search had the successor in hand anyway.
//!    The logged states carry only published type ids, so the pass needs
//!    no interner clone.  Only active nodes a *limit-stopped* search never
//!    expanded (absent from the log by construction) are enumerated live,
//!    against a cheap [`WorkerInterner`] scratch overlay — an exhausted
//!    search, the common case, expands every node.
//! 2. **Indexed, adaptive coverage candidates.**  With `use_index` set, a
//!    compact [`StateIndex`] is built over the final (post-prune) active
//!    set and each successor's covering candidates come from a
//!    subset-signature query — as long as the query's posting lists are
//!    shorter than the successor's discrete group, which is always the
//!    fallback candidate set (only states with equal discrete components
//!    are ever comparable).  Both filters are sound over-approximations of
//!    the exact `covers` test, so the resulting edge list is identical
//!    with the index on or off.
//! 3. **Parallel edge construction.**  With `threads > 1`, workers claim
//!    chunks of the active set from a shared cursor and compute candidate
//!    edges against the frozen search.  Results are keyed by active-set
//!    position, so the merged edge list — and therefore the verdict, the
//!    witness and the [`CycleStats`] — is bit-identical for every thread
//!    count.
//! 4. **One SCC pass instead of one DFS per accepting state.**  A state
//!    lies on a cycle iff its strongly connected component has size > 1 or
//!    it has a self-loop, so a single Tarjan pass over the abstract graph
//!    answers the question for *all* accepting states at once — O(V + E)
//!    where the per-state DFS walk was O(A · (V + E)) — and its SCC
//!    structure yields a concrete cycle for the violation's
//!    [`InfiniteViolation::reason`].
//!
//! The pass polls [`SearchControl::should_stop`] at a bounded interval and
//! emits [`ProgressEvent::CycleProgress`] events, so a long post-pass is
//! both observable and cancellable; a run stopped mid-construction skips
//! the (then unsound) cycle check and reports itself as limit-reached and
//! cancelled.  The pre-index O(active²) implementation is kept as
//! [`find_infinite_violation_reference`] for differential tests and the
//! `ci_bench` speedup measurement.

use crate::coverage::{covers, discrete_key, CoverageKind};
use crate::index::StateIndex;
use crate::observer::{Phase, ProgressEvent, SearchControl};
use crate::product::{ProductSuccessor, ProductSystem, StateView};
use crate::psi::{TypeTable, WorkerInterner, OMEGA};
use crate::search::{
    merge_worker_stats, KarpMillerSearch, LoggedSuccessor, SearchLimits, SearchOutcome,
    SearchStats, WorkerStats,
};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use verifas_model::ServiceRef;

/// Result of the repeated-reachability analysis.
#[derive(Debug, Clone)]
pub struct InfiniteViolation {
    /// The prefix of observable services leading to the repeatedly
    /// reachable accepting state.
    pub prefix: Vec<ServiceRef>,
    /// Human-readable explanation of why the state repeats.
    pub reason: String,
}

/// Statistics of the cycle-detection pass (rule (b)) of the
/// repeated-reachability analysis.
///
/// `candidates` counts the exact `covers` tests that ran after candidate
/// filtering, so `edges as f64 / candidates as f64` is the filter's hit
/// rate (see [`CycleStats::candidate_hit_rate`]).  Everything except the
/// timing fields and `threads`/`used_index` is deterministic: identical
/// for every thread count, and — apart from `candidates`, which measures
/// the filter itself — identical with the index on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Vertices of the abstract transition graph (the final active set).
    pub states: usize,
    /// Product successors enumerated during edge construction.
    pub successors: usize,
    /// Exact `covers` tests run after candidate filtering.
    pub candidates: usize,
    /// Edges of the abstract transition graph.
    pub edges: usize,
    /// Strongly connected components of the graph.
    pub sccs: usize,
    /// States on a cycle (SCC of size > 1, or a self-loop).
    pub cyclic_states: usize,
    /// Worker threads the edge construction ran with.
    pub threads: usize,
    /// `true` when coverage candidates were filtered through the index.
    pub used_index: bool,
    /// Wall-clock time of the edge construction, in microseconds (the
    /// pass is often sub-millisecond; coarser units would quantize the
    /// benchmark ratios built on it to noise).
    pub edge_micros: u64,
    /// Wall-clock time of the SCC pass, in microseconds.
    pub scc_micros: u64,
    /// `false` when cancellation or the deadline stopped the pass before
    /// the edge list was complete (the cycle check is then skipped and the
    /// outcome reports `limit_reached`).
    pub completed: bool,
}

impl CycleStats {
    /// Fraction of the filtered candidate pairs that passed the exact
    /// `covers` test (1.0 when nothing was tested).
    pub fn candidate_hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            1.0
        } else {
            self.edges as f64 / self.candidates as f64
        }
    }
}

/// Outcome of the analysis together with the statistics of the underlying
/// search.
#[derive(Debug, Clone)]
pub struct RepeatedOutcome {
    /// An infinite violation, if one exists (within the limits).
    pub violation: Option<InfiniteViolation>,
    /// Statistics of the auxiliary search.
    pub stats: SearchStats,
    /// `true` when the auxiliary search hit a resource limit (the answer
    /// may then be incomplete).
    pub limit_reached: bool,
    /// `true` when the auxiliary search found a finite violation first
    /// (can happen because it explores the same product).
    pub finite_violation: Option<Vec<ServiceRef>>,
    /// Per-worker statistics of the auxiliary search and the edge
    /// construction.
    pub worker_stats: Vec<WorkerStats>,
    /// Statistics of the cycle-detection pass, when it ran (absent when
    /// the search found a finite violation or rule (a) already produced
    /// the answer).
    pub cycle: Option<CycleStats>,
    /// Set when a worker thread of the auxiliary search or the edge
    /// construction panicked: the analysis degraded to a limit-stopped
    /// run (partial answers stay sound — a violation found before the
    /// panic is real) and the owning engine request surfaces the message
    /// as a typed [`crate::error::VerifasError::Internal`].
    pub failure: Option<String>,
}

/// Run the repeated-reachability analysis on a product system.
///
/// `coverage` selects the pruning order of the auxiliary search: callers
/// pass [`CoverageKind::StrictSubsumption`] when the main search used the
/// ≼ pruning (Appendix C), [`CoverageKind::Standard`] when it used the
/// classic order, and [`CoverageKind::Equality`] for the baseline verifier.
pub fn find_infinite_violation(
    product: &ProductSystem,
    coverage: CoverageKind,
    use_index: bool,
    limits: SearchLimits,
) -> RepeatedOutcome {
    find_infinite_violation_with(
        product,
        coverage,
        use_index,
        limits,
        1,
        &mut SearchControl::default(),
    )
}

/// Like [`find_infinite_violation`], but parallel, observable and
/// cancellable: `threads` workers run both the auxiliary search and the
/// edge construction of the cycle-detection pass (0 = one per available
/// core; the result is bit-identical for every thread count), progress
/// events are emitted to the control's observer (under
/// [`Phase::RepeatedReachability`]) and both the search and the cycle
/// detection stop early when the control's token is cancelled or its
/// deadline passes (the outcome then reports `limit_reached`).
pub fn find_infinite_violation_with(
    product: &ProductSystem,
    coverage: CoverageKind,
    use_index: bool,
    limits: SearchLimits,
    threads: usize,
    control: &mut SearchControl<'_>,
) -> RepeatedOutcome {
    control.phase = Some(Phase::RepeatedReachability);
    let mut search = KarpMillerSearch::new(product, coverage, use_index, limits);
    search.threads = threads;
    // The cycle-detection pass consumes the successors the search already
    // enumerated (successor enumeration — symbolic condition evaluation
    // plus congruence closure — is the dominant cost of re-walking the
    // active set, and the search has done that work once).
    search.record_successors = true;
    let outcome = search.run_with(control);
    let mut stats = search.stats;
    let mut worker_stats = std::mem::take(&mut search.worker_stats);
    let mut failure = std::mem::take(&mut search.failure);
    if let SearchOutcome::FiniteViolation(node) = outcome {
        let prefix = search.trace(node).into_iter().map(|(s, _)| s).collect();
        return RepeatedOutcome {
            violation: None,
            stats,
            limit_reached: false,
            finite_violation: Some(prefix),
            worker_stats,
            cycle: None,
            failure,
        };
    }
    let mut limit_reached = outcome == SearchOutcome::LimitReached;
    let active = search.active_nodes();
    // Rule (a): an accepting active state with an ω counter is repeatedly
    // reachable — the acceleration that produced the ω witnesses a cycle.
    if let Some(&i) = active.iter().find(|&&i| {
        let state = search.state_view(i);
        product.is_accepting_view(state)
            && !state.closed
            && state.counters.iter().any(|&(_, c)| c == OMEGA)
    }) {
        let prefix = search.trace(i).into_iter().map(|(s, _)| s).collect();
        return RepeatedOutcome {
            violation: Some(InfiniteViolation {
                prefix,
                reason: "accepting state with an unbounded (ω) artifact-relation counter"
                    .to_owned(),
            }),
            stats,
            limit_reached,
            finite_violation: None,
            worker_stats,
            cycle: None,
            failure,
        };
    }
    // Rule (b): cycle detection over the abstract transition graph of the
    // active states — indexed candidate filtering, parallel edge
    // construction, one SCC pass.
    let workers = stats.threads.max(1);
    let mut successors = std::mem::take(&mut search.successor_log);
    // Deterministic apply order already groups the log by parent; the
    // stable sort makes the per-parent ranges binary-searchable without
    // relying on that.
    successors.sort_by_key(|e| e.parent);
    let (graph, mut cycle, edge_workers, edge_failure) = build_abstract_edges(
        &search,
        product,
        coverage,
        use_index,
        &active,
        &successors,
        workers,
        control,
    );
    merge_worker_stats(&mut worker_stats, &edge_workers);
    failure = failure.or(edge_failure);
    if !cycle.completed {
        // Cancellation, the deadline or a worker panic interrupted edge
        // construction: a cycle check over the partial graph would be
        // unsound (it could miss edges and report Satisfied), so skip it
        // and report the run as limit-reached and cancelled.
        limit_reached = true;
        stats.limit_reached = true;
        stats.cancelled = true;
        return RepeatedOutcome {
            violation: None,
            stats,
            limit_reached,
            finite_violation: None,
            worker_stats,
            cycle: Some(cycle),
            failure,
        };
    }
    let scc_start = Instant::now();
    let scc = tarjan_sccs(&graph);
    let self_loop: Vec<bool> = graph
        .iter()
        .enumerate()
        .map(|(ai, edges)| edges.iter().any(|&(aj, _)| aj == ai))
        .collect();
    let on_cycle = |ai: usize| scc.size[scc.id[ai]] > 1 || self_loop[ai];
    cycle.sccs = scc.size.len();
    cycle.cyclic_states = (0..graph.len()).filter(|&ai| on_cycle(ai)).count();
    cycle.scc_micros = scc_start.elapsed().as_micros() as u64;
    let hit = active.iter().enumerate().find(|&(ai, &i)| {
        let state = search.state_view(i);
        product.is_accepting_view(state) && !state.closed && on_cycle(ai)
    });
    if let Some((ai, &i)) = hit {
        let prefix = search.trace(i).into_iter().map(|(s, _)| s).collect();
        let looped = cycle_services(ai, &graph, &scc)
            .iter()
            .map(|s| product.task.spec.service_name(*s))
            .collect::<Vec<_>>()
            .join(" → ");
        return RepeatedOutcome {
            violation: Some(InfiniteViolation {
                prefix,
                reason: format!(
                    "accepting state lies on a cycle of the coverability graph (cycle: {looped})"
                ),
            }),
            stats,
            limit_reached,
            finite_violation: None,
            worker_stats,
            cycle: Some(cycle),
            failure,
        };
    }
    RepeatedOutcome {
        violation: None,
        stats,
        limit_reached,
        finite_violation: None,
        worker_stats,
        cycle: Some(cycle),
        failure,
    }
}

/// One edge of the abstract transition graph: the target's position in the
/// active set and the service of the (first) successor that witnessed the
/// coverage.
type AbstractEdge = (usize, ServiceRef);

/// How candidate covering states are found for a successor: the discrete
/// groups of the active set, optionally sharpened by a compact signature
/// index over it.
struct Candidates {
    /// Active positions per discrete key, in ascending order — the coarse
    /// candidate set (only same-key states are ever comparable), and the
    /// fallback when an index query would cost more than scanning it.
    groups: HashMap<(usize, u64, bool), Vec<u32>>,
    /// Subset-signature index over the final active set (positions as
    /// ids), when `use_index` is on.
    index: Option<StateIndex>,
}

impl Candidates {
    fn build(use_index: bool, active: &[usize], search: &KarpMillerSearch<'_>) -> Self {
        let mut groups: HashMap<(usize, u64, bool), Vec<u32>> = HashMap::new();
        for (ai, &i) in active.iter().enumerate() {
            groups
                .entry(discrete_key(search.state_view(i)))
                .or_default()
                .push(ai as u32);
        }
        Candidates {
            groups,
            index: use_index.then(|| {
                StateIndex::over_states(
                    active
                        .iter()
                        .enumerate()
                        .map(|(ai, &i)| (ai as u32, search.state_view(i))),
                    &search.interner,
                )
            }),
        }
    }

    /// Candidate target positions for one successor state, ascending.
    ///
    /// With the index on, the subset-signature query runs only while it is
    /// cheaper than scanning the state's discrete group (its cost is the
    /// total posting length of the signature's edges); otherwise the group
    /// scan is the candidate set — the same over-approximation, just
    /// coarser.
    fn for_successor<'c>(
        &'c self,
        state: StateView<'_>,
        interner: &dyn TypeTable,
    ) -> Cow<'c, [u32]> {
        let group = self.groups.get(&discrete_key(state));
        if let (Some(index), Some(group)) = (&self.index, group) {
            if let Some(hits) = index.subset_candidates_bounded(state, interner, group.len()) {
                return Cow::Owned(hits);
            }
        }
        group.map_or(Cow::Borrowed(&[]), |g| Cow::Borrowed(g.as_slice()))
    }
}

/// Build the abstract transition graph over the active states: one edge
/// `ai → aj` whenever some successor of `active[ai]` is covered by
/// `active[aj]`, annotated with the service of the first such successor.
///
/// Successors come from the search's successor log (recorded during the
/// apply phase), so the pass never re-runs the symbolic transition
/// function.  The construction is chunked into waves of
/// [`SearchControl::granularity`] source states: within a wave, `workers`
/// threads claim chunks from a shared cursor and write their per-source
/// edge lists into per-position slots (so the merged graph is independent
/// of scheduling); between waves, the coordinating thread emits a
/// [`ProgressEvent::CycleProgress`] event.  Workers poll
/// [`SearchControl::should_stop`] per source state; an interrupted pass
/// returns with `CycleStats::completed == false`.
///
/// A panicking worker interrupts the pass the same way cancellation does
/// (`completed == false`, so the caller skips the unsound cycle check);
/// the panic message is returned as the fourth component instead of
/// aborting the process.
#[allow(clippy::too_many_arguments)]
fn build_abstract_edges(
    search: &KarpMillerSearch<'_>,
    product: &ProductSystem,
    coverage: CoverageKind,
    use_index: bool,
    active: &[usize],
    successors: &[LoggedSuccessor],
    workers: usize,
    control: &mut SearchControl<'_>,
) -> (
    Vec<Vec<AbstractEdge>>,
    CycleStats,
    Vec<WorkerStats>,
    Option<String>,
) {
    let start = Instant::now();
    let n = active.len();
    let mut cycle = CycleStats {
        states: n,
        threads: workers,
        used_index: use_index,
        completed: true,
        ..CycleStats::default()
    };
    let candidates = Candidates::build(use_index, active, search);
    // The logged successors of each active source, as a range into the
    // (parent-sorted) log.
    let ranges: Vec<&[LoggedSuccessor]> = active
        .iter()
        .map(|&i| {
            let i = i as u32;
            let lo = successors.partition_point(|e| e.parent < i);
            let hi = successors.partition_point(|e| e.parent <= i);
            &successors[lo..hi]
        })
        .collect();
    let phase = control.current_phase();
    // Sequential waves follow the progress granularity exactly; parallel
    // waves are floored so each std::thread::scope amortizes its spawns
    // over real work (progress events then come at wave boundaries, still
    // a bounded interval).
    let wave = if workers <= 1 {
        control.granularity()
    } else {
        control.granularity().max(workers * 64)
    };
    let mut graph: Vec<Vec<AbstractEdge>> = Vec::with_capacity(n);
    let mut worker_stats: Vec<WorkerStats> = Vec::new();
    crate::search::ensure_worker_slots(&mut worker_stats, workers.max(1));
    let mut failure: Option<String> = None;
    let mut processed = 0usize;
    while processed < n {
        if control.should_stop() {
            cycle.completed = false;
            break;
        }
        // Wave boundary: report the remaining work as the frontier hint
        // and re-poll the dynamic thread budget, if one is installed (the
        // merged graph is position-ordered, so the worker count of a wave
        // cannot change the result).
        control.report_frontier(n - processed);
        let workers = control.workers_for_round(workers);
        cycle.threads = cycle.threads.max(workers);
        crate::search::ensure_worker_slots(&mut worker_stats, workers);
        // Memory boundary: the finished search plus the growing edge
        // lists are this pass's resident set.  A refused grow interrupts
        // the pass like cancellation (the caller reports limit_reached —
        // a partial graph must never be cycle-checked).
        const EDGE_BYTES: usize = 48;
        if !control.charge_memory(search.estimated_bytes() + cycle.edges * EDGE_BYTES) {
            cycle.completed = false;
            break;
        }
        let end = (processed + wave).min(n);
        let complete = if workers <= 1 || end - processed < 2 * workers {
            // Small waves run inline: the wave split alone bounds the
            // cancellation-poll and event-emission intervals.
            let mut scratch = WorkerInterner::scratch(&search.interner);
            let mut buffer: Vec<ProductSuccessor> = Vec::new();
            let t0 = Instant::now();
            let mut complete = true;
            #[allow(clippy::needless_range_loop)]
            for pos in processed..end {
                if control.should_stop() {
                    complete = false;
                    break;
                }
                let edges = source_edges(
                    search,
                    product,
                    coverage,
                    &candidates,
                    active,
                    pos,
                    ranges[pos],
                    &mut scratch,
                    &mut buffer,
                    &mut worker_stats[0],
                    &mut cycle,
                );
                cycle.edges += edges.len();
                graph.push(edges);
            }
            worker_stats[0].busy_micros += t0.elapsed().as_micros() as u64;
            complete
        } else {
            let window = processed..end;
            let slots: Vec<Mutex<Option<Vec<AbstractEdge>>>> =
                window.clone().map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            let stopped = AtomicBool::new(false);
            let chunk = ((end - processed) / (workers * 4)).max(1);
            let mut wave_stats: Vec<(usize, WorkerStats, CycleStats)> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let slots = &slots;
                        let cursor = &cursor;
                        let stopped = &stopped;
                        let candidates = &candidates;
                        let ranges = &ranges;
                        let window = window.clone();
                        let control: &SearchControl<'_> = control;
                        scope.spawn(move || {
                            let mut scratch = WorkerInterner::scratch(&search.interner);
                            let mut buffer: Vec<ProductSuccessor> = Vec::new();
                            let mut stats = WorkerStats::default();
                            let mut counts = CycleStats::default();
                            let t0 = Instant::now();
                            'steal: loop {
                                let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                                if begin >= window.len() {
                                    break;
                                }
                                let last = (begin + chunk).min(window.len());
                                #[allow(clippy::needless_range_loop)]
                                for offset in begin..last {
                                    if control.should_stop() {
                                        stopped.store(true, Ordering::Relaxed);
                                        break 'steal;
                                    }
                                    let pos = window.start + offset;
                                    let edges = source_edges(
                                        search,
                                        product,
                                        coverage,
                                        candidates,
                                        active,
                                        pos,
                                        ranges[pos],
                                        &mut scratch,
                                        &mut buffer,
                                        &mut stats,
                                        &mut counts,
                                    );
                                    // Recover a poisoned slot (a sibling
                                    // worker panicked): slots only ever
                                    // hold fully built edge lists.
                                    *slots[offset]
                                        .lock()
                                        .unwrap_or_else(|poisoned| poisoned.into_inner()) =
                                        Some(edges);
                                }
                            }
                            stats.busy_micros = t0.elapsed().as_micros() as u64;
                            (stats, counts)
                        })
                    })
                    .collect();
                for (worker, handle) in handles.into_iter().enumerate() {
                    // A panicked edge worker degrades the pass to an
                    // interrupted one (the caller then skips the unsound
                    // cycle check) instead of aborting the process; keep
                    // joining the rest of the pool so no thread leaks.
                    match handle.join() {
                        Ok((stats, counts)) => wave_stats.push((worker, stats, counts)),
                        Err(panic) => {
                            let _ = failure.get_or_insert_with(|| {
                                format!(
                                    "edge-construction worker panicked: {}",
                                    crate::error::panic_message(panic.as_ref())
                                )
                            });
                        }
                    }
                }
            });
            for (worker, stats, counts) in wave_stats.iter() {
                worker_stats[*worker].absorb(stats);
                cycle.successors += counts.successors;
                cycle.candidates += counts.candidates;
            }
            if stopped.load(Ordering::Relaxed) || failure.is_some() {
                false
            } else {
                // Merge the wave in position order (determinism: the graph
                // does not depend on which worker produced which slot).
                for slot in slots {
                    let edges = slot
                        .into_inner()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .expect("every slot of an uninterrupted wave is filled");
                    cycle.edges += edges.len();
                    graph.push(edges);
                }
                true
            }
        };
        if !complete {
            cycle.completed = false;
            break;
        }
        processed = end;
        control.emit(ProgressEvent::CycleProgress {
            phase,
            states_processed: processed,
            edges_built: cycle.edges,
        });
    }
    cycle.edge_micros = start.elapsed().as_micros() as u64;
    (graph, cycle, worker_stats, failure)
}

/// The outgoing abstract edges of one source state, ascending by target
/// position; each target is annotated with the service of the first
/// successor that it covers.
///
/// Successors normally come from the search's log; an active node a
/// limit-stopped search never expanded has no log entries, so its
/// successors are enumerated live against a scratch interner overlay
/// (the old implementation's path, kept for exactly this case — an
/// exhausted search never takes it).
#[allow(clippy::too_many_arguments)]
fn source_edges(
    search: &KarpMillerSearch<'_>,
    product: &ProductSystem,
    coverage: CoverageKind,
    candidates: &Candidates,
    active: &[usize],
    position: usize,
    successors: &[LoggedSuccessor],
    scratch: &mut WorkerInterner<'_>,
    buffer: &mut Vec<ProductSuccessor>,
    stats: &mut WorkerStats,
    counts: &mut CycleStats,
) -> Vec<AbstractEdge> {
    let node = active[position];
    stats.nodes_planned += 1;
    if search.state_view(node).closed {
        return Vec::new();
    }
    let mut out: Vec<AbstractEdge> = Vec::new();
    if search.is_expanded(node) {
        stats.successors_planned += successors.len();
        counts.successors += successors.len();
        for entry in successors {
            edges_for_successor(
                search,
                coverage,
                candidates,
                active,
                entry.service,
                search.logged_view(entry),
                &search.interner,
                &mut out,
                counts,
            );
        }
    } else {
        let state = search.materialize_state(node);
        product.successors_into(&state, scratch, buffer);
        stats.successors_planned += buffer.len();
        counts.successors += buffer.len();
        for succ in buffer.iter() {
            edges_for_successor(
                search,
                coverage,
                candidates,
                active,
                succ.service,
                succ.state.view(),
                scratch,
                &mut out,
                counts,
            );
        }
    }
    out.sort_unstable_by_key(|&(t, _)| t);
    out
}

/// Test one successor against the candidate targets, appending any new
/// edges (first witness wins).
#[allow(clippy::too_many_arguments)]
fn edges_for_successor(
    search: &KarpMillerSearch<'_>,
    coverage: CoverageKind,
    candidates: &Candidates,
    active: &[usize],
    service: ServiceRef,
    succ: StateView<'_>,
    table: &dyn TypeTable,
    out: &mut Vec<AbstractEdge>,
    counts: &mut CycleStats,
) {
    for &aj in candidates.for_successor(succ, table).iter() {
        let aj = aj as usize;
        if out.iter().any(|&(t, _)| t == aj) {
            // Already witnessed by an earlier successor; the edge and its
            // service are fixed by the first witness.
            continue;
        }
        counts.candidates += 1;
        if covers(coverage, succ, search.state_view(active[aj]), table) {
            out.push((aj, service));
        }
    }
}

/// The strongly connected components of the abstract graph.
struct SccResult {
    /// Component id per vertex.
    id: Vec<usize>,
    /// Component sizes, indexed by component id.
    size: Vec<usize>,
}

/// Iterative Tarjan over the abstract graph (recursion-free: active sets
/// can be large and stack depth must not depend on the workload).
fn tarjan_sccs(graph: &[Vec<AbstractEdge>]) -> SccResult {
    let n = graph.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut id = vec![UNVISITED; n];
    let mut components = 0usize;
    let mut next_index = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(&(v, edge)) = call.last() {
            if edge < graph[v].len() {
                call.last_mut().expect("frame exists").1 += 1;
                let (w, _) = graph[v][edge];
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(u, _)) = call.last() {
                    low[u] = low[u].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds the component");
                        on_stack[w] = false;
                        id[w] = components;
                        if w == v {
                            break;
                        }
                    }
                    components += 1;
                }
            }
        }
    }
    let mut size = vec![0usize; components];
    for &component in &id {
        size[component] += 1;
    }
    SccResult { id, size }
}

/// A concrete cycle through `start` (which must lie on one): the services
/// of a shortest edge path `start → … → start` inside its SCC, found by a
/// deterministic BFS over the (position-ordered) edge lists.
fn cycle_services(start: usize, graph: &[Vec<AbstractEdge>], scc: &SccResult) -> Vec<ServiceRef> {
    let component = scc.id[start];
    let mut parent: HashMap<usize, AbstractEdge> = HashMap::new();
    let mut visited: HashSet<usize> = HashSet::from([start]);
    let mut queue: VecDeque<usize> = VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        for &(w, service) in &graph[v] {
            if w == start {
                // Close the cycle: walk the BFS parents back to `start`.
                let mut services = vec![service];
                let mut current = v;
                while current != start {
                    let (p, s) = parent[&current];
                    services.push(s);
                    current = p;
                }
                services.reverse();
                return services;
            }
            if scc.id[w] == component && visited.insert(w) {
                parent.insert(w, (v, service));
                queue.push_back(w);
            }
        }
    }
    Vec::new()
}

/// The pre-optimisation sequential implementation of the analysis —
/// O(active²) `covers` tests for edge construction plus one DFS walk per
/// accepting state, over a search running the pre-overhaul
/// [`KarpMillerSearch::reference_layout`] linear candidate scans — kept as
/// a differential-testing oracle and as the baseline of the `ci_bench`
/// repeated-reachability and `state_layout` speedup measurements.  New
/// callers should use [`find_infinite_violation`].
pub fn find_infinite_violation_reference(
    product: &ProductSystem,
    coverage: CoverageKind,
    use_index: bool,
    limits: SearchLimits,
) -> RepeatedOutcome {
    let mut search = KarpMillerSearch::new(product, coverage, use_index, limits);
    search.reference_layout = true;
    let outcome = search.run();
    let stats = search.stats;
    let worker_stats = std::mem::take(&mut search.worker_stats);
    let failure = std::mem::take(&mut search.failure);
    if let SearchOutcome::FiniteViolation(node) = outcome {
        let prefix = search.trace(node).into_iter().map(|(s, _)| s).collect();
        return RepeatedOutcome {
            violation: None,
            stats,
            limit_reached: false,
            finite_violation: Some(prefix),
            worker_stats,
            cycle: None,
            failure,
        };
    }
    let limit_reached = outcome == SearchOutcome::LimitReached;
    let active = search.active_nodes();
    for &i in &active {
        let state = search.state_view(i);
        if product.is_accepting_view(state)
            && !state.closed
            && state.counters.iter().any(|&(_, c)| c == OMEGA)
        {
            let prefix = search.trace(i).into_iter().map(|(s, _)| s).collect();
            return RepeatedOutcome {
                violation: Some(InfiniteViolation {
                    prefix,
                    reason: "accepting state with an unbounded (ω) artifact-relation counter"
                        .to_owned(),
                }),
                stats,
                limit_reached,
                finite_violation: None,
                worker_stats,
                cycle: None,
                failure,
            };
        }
    }
    let mut interner = search.interner.clone();
    let n = active.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ai, &i) in active.iter().enumerate() {
        if search.state_view(i).closed {
            continue;
        }
        let state = search.materialize_state(i);
        for succ in product.successors(&state, &mut interner) {
            for (aj, &j) in active.iter().enumerate() {
                if covers(coverage, succ.state.view(), search.state_view(j), &interner) {
                    edges[ai].push(aj);
                }
            }
        }
    }
    for (ai, &i) in active.iter().enumerate() {
        let state = search.state_view(i);
        if !product.is_accepting_view(state) || state.closed {
            continue;
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = edges[ai].clone();
        let mut on_cycle = false;
        while let Some(x) = stack.pop() {
            if x == ai {
                on_cycle = true;
                break;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            stack.extend(edges[x].iter().copied());
        }
        if on_cycle {
            let prefix = search.trace(i).into_iter().map(|(s, _)| s).collect();
            return RepeatedOutcome {
                violation: Some(InfiniteViolation {
                    prefix,
                    reason: "accepting state lies on a cycle of the coverability graph".to_owned(),
                }),
                stats,
                limit_reached,
                finite_violation: None,
                worker_stats,
                cycle: None,
                failure,
            };
        }
    }
    RepeatedOutcome {
        violation: None,
        stats,
        limit_reached,
        finite_violation: None,
        worker_stats,
        cycle: None,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CancelToken;
    use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, TaskId, Term,
    };

    /// status cycles null -> "Working" -> "Done" -> null forever.
    fn cycling_spec() -> HasSpec {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        let status = root.data_var("status");
        root.service_parts(
            "begin",
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(status), Term::str("Working")),
            vec![],
            None,
        );
        root.service_parts(
            "finish",
            Condition::eq(Term::var(status), Term::str("Working")),
            Condition::eq(Term::var(status), Term::str("Done")),
            vec![],
            None,
        );
        root.service_parts(
            "reset",
            Condition::eq(Term::var(status), Term::str("Done")),
            Condition::eq(Term::var(status), Term::Null),
            vec![],
            None,
        );
        let mut b = SpecBuilder::new("cycle", db, root.build());
        b.global_pre(Condition::eq(Term::var(status), Term::Null));
        b.build().unwrap()
    }

    fn status_is(v: &str) -> Condition {
        Condition::eq(Term::var(verifas_model::VarId::new(0)), Term::str(v))
    }

    #[test]
    fn violated_invariant_is_found_as_infinite_violation() {
        // G ¬(status = "Done") is violated by the infinite cycling run.
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "never-done",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Done"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_some());
        assert!(!outcome.limit_reached);
        // The SCC pass ran and found a cycle; the reason names it.
        let cycle = outcome.cycle.expect("rule (b) ran");
        assert!(cycle.completed);
        assert!(cycle.edges > 0);
        assert!(cycle.cyclic_states > 0);
        assert!(outcome.violation.unwrap().reason.contains("cycle:"));
    }

    #[test]
    fn satisfied_invariant_has_no_violation() {
        // G ¬(status = "Broken") holds.
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "never-broken",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Broken"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_none());
        assert!(!outcome.limit_reached);
        assert!(outcome.cycle.is_some_and(|c| c.completed));
    }

    #[test]
    fn liveness_violation_detected() {
        // F (status = "Shipped") is violated: there is an infinite run that
        // never reaches "Shipped" (indeed no run ever does).
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "eventually-shipped",
            TaskId::new(0),
            vec![],
            Ltl::eventually(Ltl::prop(0)),
            vec![PropAtom::Condition(status_is("Shipped"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            false,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_some());
    }

    #[test]
    fn satisfied_response_property() {
        // G (status = "Working" -> F status = "Done") holds for this spec:
        // from "Working" the only applicable service is `finish`, and
        // fairness of local runs means the run either stops being extended
        // (not a run) or eventually fires it.
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "working-leads-to-done",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::eventually(Ltl::prop(1)))),
            vec![
                PropAtom::Condition(status_is("Working")),
                PropAtom::Condition(status_is("Done")),
            ],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let outcome = find_infinite_violation(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
        );
        assert!(outcome.violation.is_none());
    }

    /// The verdict and the witness prefix agree with the pre-index
    /// reference implementation, for every combination of coverage order,
    /// index setting and thread count.
    #[test]
    fn agrees_with_the_reference_implementation() {
        let spec = cycling_spec();
        for (name, formula, props) in [
            (
                "never-done",
                Ltl::globally(Ltl::not(Ltl::prop(0))),
                vec![PropAtom::Condition(status_is("Done"))],
            ),
            (
                "never-broken",
                Ltl::globally(Ltl::not(Ltl::prop(0))),
                vec![PropAtom::Condition(status_is("Broken"))],
            ),
            (
                "eventually-shipped",
                Ltl::eventually(Ltl::prop(0)),
                vec![PropAtom::Condition(status_is("Shipped"))],
            ),
        ] {
            let property = LtlFoProperty::new(name, TaskId::new(0), vec![], formula, props);
            let product = ProductSystem::new(&spec, &property, true).unwrap();
            let reference = find_infinite_violation_reference(
                &product,
                CoverageKind::StrictSubsumption,
                true,
                SearchLimits::default(),
            );
            for use_index in [true, false] {
                for threads in [1, 4] {
                    let outcome = find_infinite_violation_with(
                        &product,
                        CoverageKind::StrictSubsumption,
                        use_index,
                        SearchLimits::default(),
                        threads,
                        &mut SearchControl::default(),
                    );
                    assert_eq!(
                        reference.violation.is_some(),
                        outcome.violation.is_some(),
                        "{name}: verdict diverged (index {use_index}, {threads} threads)"
                    );
                    assert_eq!(
                        reference.violation.as_ref().map(|v| &v.prefix),
                        outcome.violation.as_ref().map(|v| &v.prefix),
                        "{name}: witness prefix diverged (index {use_index}, {threads} threads)"
                    );
                }
            }
        }
    }

    /// On a limit-stopped auxiliary search the active set can contain
    /// frontier nodes the search never expanded — their successors are
    /// absent from the log, and the pass must enumerate them live so it
    /// still finds every violation the reference (which re-enumerates all
    /// active states) finds.  Sweep the state budget so the cut lands at
    /// many different round positions.
    #[test]
    fn limit_stopped_searches_agree_with_the_reference() {
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "eventually-shipped",
            TaskId::new(0),
            vec![],
            Ltl::eventually(Ltl::prop(0)),
            vec![PropAtom::Condition(status_is("Shipped"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut violations_on_truncated = 0;
        for max_states in 2..24 {
            let limits = SearchLimits {
                max_states,
                max_millis: 600_000,
            };
            let reference = find_infinite_violation_reference(
                &product,
                CoverageKind::StrictSubsumption,
                true,
                limits,
            );
            for threads in [1, 4] {
                let outcome = find_infinite_violation_with(
                    &product,
                    CoverageKind::StrictSubsumption,
                    true,
                    limits,
                    threads,
                    &mut SearchControl::default(),
                );
                assert_eq!(
                    reference.violation.as_ref().map(|v| &v.prefix),
                    outcome.violation.as_ref().map(|v| &v.prefix),
                    "witness diverged at max_states {max_states} ({threads} threads)"
                );
                assert_eq!(reference.limit_reached, outcome.limit_reached);
            }
            if reference.limit_reached && reference.violation.is_some() {
                violations_on_truncated += 1;
            }
        }
        // The sweep must actually exercise the interesting case: a
        // truncated search whose partial active set already witnesses the
        // violation.
        assert!(violations_on_truncated > 0, "sweep never hit the hard case");
    }

    /// A cancellation firing during edge construction skips the cycle
    /// check: no violation is reported and the outcome is flagged as
    /// limit-reached and cancelled (not silently Satisfied).
    #[test]
    fn cancellation_during_edge_construction_is_inconclusive() {
        let spec = cycling_spec();
        // A property that *is* violated by an infinite run: if the
        // cancelled pass were to run over the partial edge list, it could
        // still (unsoundly) claim a verdict; the safe answer is none.
        let property = LtlFoProperty::new(
            "eventually-shipped",
            TaskId::new(0),
            vec![],
            Ltl::eventually(Ltl::prop(0)),
            vec![PropAtom::Condition(status_is("Shipped"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let token = CancelToken::new();
        let trigger = token.clone();
        // Cancel the moment the post-pass reports its first progress: the
        // token lands between waves of edge construction.
        let mut observer = move |event: &ProgressEvent| {
            if matches!(event, ProgressEvent::CycleProgress { .. }) {
                trigger.cancel();
            }
        };
        let mut control = SearchControl {
            observer: Some(&mut observer),
            cancel: Some(token),
            progress_every: 1,
            ..SearchControl::default()
        };
        let outcome = find_infinite_violation_with(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
            1,
            &mut control,
        );
        assert!(
            outcome.violation.is_none(),
            "no verdict from a partial graph"
        );
        assert!(outcome.limit_reached);
        assert!(outcome.stats.limit_reached);
        assert!(outcome.stats.cancelled);
        let cycle = outcome.cycle.expect("the pass started");
        assert!(!cycle.completed);
    }

    /// The post-pass emits `CycleProgress` events under the
    /// repeated-reachability phase, with monotone counters.
    #[test]
    fn cycle_detection_emits_progress_events() {
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "never-broken",
            TaskId::new(0),
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(status_is("Broken"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut observer = |event: &ProgressEvent| {
            if let ProgressEvent::CycleProgress {
                phase,
                states_processed,
                edges_built,
            } = event
            {
                assert_eq!(*phase, Phase::RepeatedReachability);
                seen.push((*states_processed, *edges_built));
            }
        };
        let mut control = SearchControl {
            observer: Some(&mut observer),
            progress_every: 1,
            ..SearchControl::default()
        };
        let outcome = find_infinite_violation_with(
            &product,
            CoverageKind::StrictSubsumption,
            true,
            SearchLimits::default(),
            1,
            &mut control,
        );
        drop(control);
        assert!(outcome.cycle.is_some());
        assert!(!seen.is_empty(), "the pass must be observable");
        assert!(seen
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    /// The edge construction and SCC statistics are identical across
    /// thread counts, and identical across index settings except for the
    /// candidate count (which measures the filter itself).
    #[test]
    fn cycle_stats_are_deterministic() {
        let spec = cycling_spec();
        let property = LtlFoProperty::new(
            "eventually-shipped",
            TaskId::new(0),
            vec![],
            Ltl::eventually(Ltl::prop(0)),
            vec![PropAtom::Condition(status_is("Shipped"))],
        );
        let product = ProductSystem::new(&spec, &property, true).unwrap();
        let run = |use_index: bool, threads: usize| {
            let outcome = find_infinite_violation_with(
                &product,
                CoverageKind::StrictSubsumption,
                use_index,
                SearchLimits::default(),
                threads,
                &mut SearchControl::default(),
            );
            let mut cycle = outcome.cycle.expect("rule (b) ran");
            cycle.edge_micros = 0;
            cycle.scc_micros = 0;
            cycle.threads = 0;
            (outcome.violation.map(|v| (v.prefix, v.reason)), cycle)
        };
        let baseline = run(true, 1);
        assert_eq!(baseline, run(true, 4), "thread count changed the result");
        let (no_index_verdict, no_index_cycle) = run(false, 1);
        assert_eq!(baseline.0, no_index_verdict, "index changed the verdict");
        let mut comparable = no_index_cycle;
        comparable.candidates = baseline.1.candidates;
        comparable.used_index = baseline.1.used_index;
        assert_eq!(baseline.1, comparable, "index changed the graph");
    }
}
