//! Condition evaluation over partial isomorphism types
//! (`eval(τ, φ)` of Section 3.2).
//!
//! A quantifier-free condition is *compiled* against the expression
//! universe: it is put in DNF, relational atoms are flattened into
//! navigation equalities (`flat(φ)` of Appendix A: `R(x, y₁…yₙ)` becomes
//! `⋀ᵢ x.Aᵢ = yᵢ`, and a negated atom becomes the disjunction of the
//! corresponding disequalities), and each resulting conjunct becomes a set
//! of [`Edge`]s.  Evaluating the compiled condition on a type `τ` returns
//! the *minimal extensions* of `τ` satisfying the condition: one candidate
//! per conjunct, discarding the inconsistent ones.

use crate::expr::{ExprId, ExprUniverse};
use crate::pit::{Edge, Pit, PitBuilder};
use std::collections::HashSet;
use verifas_model::{AttrId, Condition, Literal, Term};

/// A condition compiled to expression-level DNF.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompiledCondition {
    /// Each element is one satisfiable-looking conjunct: a set of edges
    /// that must all be added to the type.  An empty outer vector means the
    /// condition is unsatisfiable (`False`); an empty inner vector is the
    /// trivially true conjunct.
    pub conjuncts: Vec<Vec<Edge>>,
}

impl CompiledCondition {
    /// The trivially true compiled condition.
    pub fn trivial() -> Self {
        CompiledCondition {
            conjuncts: vec![vec![]],
        }
    }

    /// `true` iff the compiled condition has no satisfiable conjunct.
    pub fn is_unsatisfiable(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

/// Translate a term into its expression (the universe must have been built
/// with every constant occurring in the conditions of the specification and
/// the property).
fn term_expr(term: &Term, universe: &ExprUniverse) -> ExprId {
    match term {
        Term::Null => universe.null_expr(),
        Term::Var(v) => universe
            .var_expr(*v)
            .unwrap_or_else(|| panic!("variable {v:?} missing from the expression universe")),
        Term::Const(c) => universe
            .const_expr(c)
            .unwrap_or_else(|| panic!("constant {c:?} missing from the expression universe")),
    }
}

/// Compile a condition against an expression universe.
pub fn compile_condition(cond: &Condition, universe: &ExprUniverse) -> CompiledCondition {
    let mut out: Vec<Vec<Edge>> = Vec::new();
    for conjunct in cond.dnf() {
        // Each model-level conjunct may expand into several expression-level
        // conjuncts because a negated relational atom is a disjunction of
        // attribute disequalities.
        let mut partials: Vec<Vec<Edge>> = vec![vec![]];
        let mut dead = false;
        for literal in &conjunct {
            match literal {
                Literal::Cmp(l, op, r) => {
                    let (a, b) = (term_expr(l, universe), term_expr(r, universe));
                    if a == b {
                        match op {
                            verifas_model::CmpOp::Eq => continue,
                            verifas_model::CmpOp::Neq => {
                                dead = true;
                                break;
                            }
                        }
                    }
                    let edge = match op {
                        verifas_model::CmpOp::Eq => Edge::eq(a, b),
                        verifas_model::CmpOp::Neq => Edge::neq(a, b),
                    };
                    for p in &mut partials {
                        p.push(edge);
                    }
                }
                Literal::Rel {
                    id, args, positive, ..
                } => {
                    if matches!(id, Term::Null) {
                        // A relational atom with a null key is false.
                        if *positive {
                            dead = true;
                            break;
                        } else {
                            continue;
                        }
                    }
                    let id_expr = term_expr(id, universe);
                    let navs: Vec<(ExprId, ExprId)> = args
                        .iter()
                        .enumerate()
                        .map(|(i, arg)| {
                            let child = universe
                                .navigate(id_expr, AttrId::new(i as u32))
                                .unwrap_or_else(|| {
                                    panic!(
                                        "navigation expression missing for attribute {i} of a relational atom"
                                    )
                                });
                            (child, term_expr(arg, universe))
                        })
                        .collect();
                    if *positive {
                        for p in &mut partials {
                            for (child, arg) in &navs {
                                if child != arg {
                                    p.push(Edge::eq(*child, *arg));
                                }
                            }
                        }
                    } else {
                        // ¬R(x, ȳ): some attribute differs.
                        let mut next = Vec::with_capacity(partials.len() * navs.len().max(1));
                        if navs.is_empty() {
                            // A negated atom over a zero-attribute relation
                            // can only constrain the key, which flat() drops;
                            // treat it as unsatisfiable within this conjunct.
                            dead = true;
                            break;
                        }
                        for p in &partials {
                            for (child, arg) in &navs {
                                if child == arg {
                                    continue; // x.A ≠ x.A is unsatisfiable
                                }
                                let mut q = p.clone();
                                q.push(Edge::neq(*child, *arg));
                                next.push(q);
                            }
                        }
                        if next.is_empty() {
                            dead = true;
                            break;
                        }
                        partials = next;
                    }
                }
            }
        }
        if !dead {
            out.extend(partials);
        }
    }
    // Deduplicate identical conjuncts (common after flattening).
    for c in &mut out {
        c.sort_unstable();
        c.dedup();
    }
    out.sort();
    out.dedup();
    CompiledCondition { conjuncts: out }
}

/// `eval(τ, φ)`: all minimal consistent extensions of `pit` satisfying the
/// compiled condition.  `static_removed` lists edges the static analysis
/// proved non-violating; they are dropped from the results to shrink the
/// state space (Section 3.7).
pub fn eval_extensions(
    pit: &Pit,
    compiled: &CompiledCondition,
    universe: &ExprUniverse,
    static_removed: &HashSet<Edge>,
) -> Vec<Pit> {
    let mut out = Vec::new();
    for conjunct in &compiled.conjuncts {
        let mut builder = PitBuilder::from_pit(universe, pit);
        for edge in conjunct {
            builder.assert_edge(*edge);
        }
        if let Some(extended) = builder.finish() {
            out.push(extended.without_edges(static_removed));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Extend every type of `pits` with the compiled condition, flattening the
/// results (used by the product construction to conjoin the conditions of
/// several propositions).
pub fn extend_all(
    pits: Vec<Pit>,
    compiled: &CompiledCondition,
    universe: &ExprUniverse,
    static_removed: &HashSet<Edge>,
) -> Vec<Pit> {
    let mut out = Vec::new();
    for pit in pits {
        out.extend(eval_extensions(&pit, compiled, universe, static_removed));
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use verifas_model::schema::attr::{data, fk};
    use verifas_model::{
        DataValue, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, VarId, VarRef,
    };

    fn spec() -> (HasSpec, ExprUniverse) {
        let mut db = DatabaseSchema::new();
        let credit = db.add_relation("CREDIT", vec![data("status")]).unwrap();
        let cust = db
            .add_relation("CUSTOMERS", vec![data("name"), fk("record", credit)])
            .unwrap();
        let mut root = TaskBuilder::new("Root");
        root.id_var("cust_id", cust);
        root.data_var("name");
        root.data_var("status");
        root.service_parts("noop", Condition::True, Condition::True, vec![], None);
        let spec = SpecBuilder::new("eval-test", db, root.build())
            .build()
            .unwrap();
        let consts = BTreeSet::from([DataValue::str("Good"), DataValue::str("Init")]);
        let u = ExprUniverse::build(&spec, spec.root(), &[], &consts);
        (spec, u)
    }

    #[test]
    fn compile_comparison_conditions() {
        let (_spec, u) = spec();
        let status = Term::var(VarId::new(2));
        let c = Condition::eq(status.clone(), Term::str("Init"));
        let compiled = compile_condition(&c, &u);
        assert_eq!(compiled.conjuncts.len(), 1);
        assert_eq!(compiled.conjuncts[0].len(), 1);
        // Disjunction gives two conjuncts.
        let c2 = Condition::or([
            Condition::eq(status.clone(), Term::str("Init")),
            Condition::eq(status.clone(), Term::str("Good")),
        ]);
        assert_eq!(compile_condition(&c2, &u).conjuncts.len(), 2);
        // x = x is trivially true, x ≠ x unsatisfiable.
        assert_eq!(
            compile_condition(&Condition::eq(status.clone(), status.clone()), &u),
            CompiledCondition::trivial()
        );
        assert!(compile_condition(&Condition::neq(status.clone(), status), &u).is_unsatisfiable());
        assert!(compile_condition(&Condition::False, &u).is_unsatisfiable());
    }

    #[test]
    fn compile_relational_atoms_flattens_to_navigations() {
        let (spec, u) = spec();
        let cust_rel = spec.db.relation_by_name("CUSTOMERS").unwrap().0;
        let credit_rel = spec.db.relation_by_name("CREDIT").unwrap().0;
        let cust_id = Term::var(VarId::new(0));
        let name = Term::var(VarId::new(1));
        // CUSTOMERS(cust_id, name, r) with r existentially handled by using
        // a navigation-free wildcard: here we bind the record position to
        // null to exercise the flat() translation only.
        let atom = Condition::Rel {
            rel: cust_rel,
            id: cust_id.clone(),
            args: vec![name.clone(), Term::Null],
        };
        let compiled = compile_condition(&atom, &u);
        assert_eq!(compiled.conjuncts.len(), 1);
        assert_eq!(compiled.conjuncts[0].len(), 2); // cust_id.name = name, cust_id.record = null
                                                    // Negated atom: one conjunct per attribute.
        let neg = Condition::not(atom);
        let compiled_neg = compile_condition(&neg, &u);
        assert_eq!(compiled_neg.conjuncts.len(), 2);
        // A nested navigation: CREDIT(record-of-cust, "Good") written as a
        // condition over cust_id.record via an atom on CREDIT with the
        // navigation expression — here we exercise it through eval below.
        let _ = credit_rel;
    }

    #[test]
    fn eval_returns_minimal_consistent_extensions() {
        let (_spec, u) = spec();
        let status = VarRef::Task(VarId::new(2));
        let status_e = u.var_expr(status).unwrap();
        let init = u.const_expr(&DataValue::str("Init")).unwrap();
        let good = u.const_expr(&DataValue::str("Good")).unwrap();
        let cond = Condition::or([
            Condition::eq(Term::var(VarId::new(2)), Term::str("Init")),
            Condition::eq(Term::var(VarId::new(2)), Term::str("Good")),
        ]);
        let compiled = compile_condition(&cond, &u);
        let none = HashSet::new();
        let results = eval_extensions(&Pit::empty(), &compiled, &u, &none);
        assert_eq!(results.len(), 2);
        assert!(results.iter().any(|p| p.contains(Edge::eq(status_e, init))));
        assert!(results.iter().any(|p| p.contains(Edge::eq(status_e, good))));
        // With status already = "Good", only the consistent branch remains.
        let mut b = PitBuilder::new(&u);
        b.assert_eq(status_e, good);
        let pit = b.finish().unwrap();
        let results = eval_extensions(&pit, &compiled, &u, &none);
        assert_eq!(results.len(), 1);
        assert!(results[0].contains(Edge::eq(status_e, good)));
        // An unsatisfiable condition yields no extension.
        let f = compile_condition(&Condition::False, &u);
        assert!(eval_extensions(&pit, &f, &u, &none).is_empty());
    }

    #[test]
    fn eval_respects_existing_disequalities() {
        let (_spec, u) = spec();
        let status_e = u.var_expr(VarRef::Task(VarId::new(2))).unwrap();
        let init = u.const_expr(&DataValue::str("Init")).unwrap();
        let mut b = PitBuilder::new(&u);
        b.assert_neq(status_e, init);
        let pit = b.finish().unwrap();
        let cond = Condition::eq(Term::var(VarId::new(2)), Term::str("Init"));
        let compiled = compile_condition(&cond, &u);
        assert!(eval_extensions(&pit, &compiled, &u, &HashSet::new()).is_empty());
    }

    #[test]
    fn static_removed_edges_are_filtered_from_results() {
        let (_spec, u) = spec();
        let status_e = u.var_expr(VarRef::Task(VarId::new(2))).unwrap();
        let init = u.const_expr(&DataValue::str("Init")).unwrap();
        let cond = Condition::eq(Term::var(VarId::new(2)), Term::str("Init"));
        let compiled = compile_condition(&cond, &u);
        let removed: HashSet<Edge> = [Edge::eq(status_e, init)].into_iter().collect();
        let results = eval_extensions(&Pit::empty(), &compiled, &u, &removed);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_empty());
    }

    #[test]
    fn extend_all_combines_branches() {
        let (_spec, u) = spec();
        let v_name = Term::var(VarId::new(1));
        let v_status = Term::var(VarId::new(2));
        let c1 = compile_condition(
            &Condition::or([
                Condition::eq(v_name.clone(), Term::str("Good")),
                Condition::eq(v_name, Term::str("Init")),
            ]),
            &u,
        );
        let c2 = compile_condition(
            &Condition::or([
                Condition::eq(v_status.clone(), Term::str("Good")),
                Condition::eq(v_status, Term::str("Init")),
            ]),
            &u,
        );
        let none = HashSet::new();
        let step1 = eval_extensions(&Pit::empty(), &c1, &u, &none);
        let step2 = extend_all(step1, &c2, &u, &none);
        assert_eq!(step2.len(), 4);
    }
}
