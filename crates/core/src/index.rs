//! Data-structure support for the pruning tests (Section 3.6).
//!
//! Every time a new state is produced the search must (1) find the active
//! states it covers and (2) check whether an active state covers it.  Both
//! reduce to subset/superset queries over the state's edge signature (see
//! [`edge_signature`]: the `=`-edges of its type), which over-approximate
//! the ≼ tests and cheaply filter the candidates before the exact
//! (max-flow based) comparison runs.
//!
//! The paper uses a Trie for superset queries and inverted lists for subset
//! queries; this implementation answers both kinds of queries from posting
//! lists (an inverted index from edges to states), which has the same
//! filtering power: a stored state is a *subset candidate* when all of its
//! edges occur in the query, and a *superset candidate* when it occurs in
//! the posting list of every query edge.
//!
//! The index is **concurrent**: states are partitioned into groups by
//! their discrete components (automaton state, child activation, closed
//! flag) — only states of the same group are ever comparable — and the
//! groups are kept behind per-group read/write locks inside a sharded
//! group directory.  The parallel plan phase of
//! [`crate::search::KarpMillerSearch`] issues subset/superset candidate
//! queries from all workers at once (shared read locks per group) while
//! the sequential apply phase inserts and removes states (short write
//! locks per group).

use crate::pit::Edge;
use crate::product::StateView;
use crate::psi::TypeTable;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

/// Discrete part of a state; candidates are only comparable within the same
/// group.
type GroupKey = (usize, u64, bool);

/// Number of shards in the group directory (a power of two; bounds lock
/// contention when many groups are created at once).
const SHARD_COUNT: usize = 16;

fn group_key(state: StateView<'_>) -> GroupKey {
    crate::coverage::discrete_key(state)
}

fn shard_of(key: &GroupKey) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % SHARD_COUNT
}

/// The edge signature of a state: the `=`-edges of its partial isomorphism
/// type.
///
/// This is the largest signature for which the subset/superset filters are
/// *sound* (they never drop a true coverage candidate), which the
/// repeated-reachability cycle detection depends on — a dropped candidate
/// there would be a missed edge and possibly a missed violation:
///
/// * every coverage order requires `covering.pit ⊑ covered.pit`, i.e. the
///   covering type's closed edge set is a subset of the covered one's, so
///   its `=`-edges are too;
/// * `≠`-edges are excluded for cost, not soundness: a canonically closed
///   type materialises a `≠`-edge against almost every constant of the
///   universe, so `≠`-postings degenerate to nearly the whole group and a
///   query over them costs more than the exact tests it filters;
/// * stored-type edges (of positive counters) are excluded for soundness:
///   a covering state may hold stored tuples the flow mapping leaves as
///   slack, whose types — and edges — appear nowhere in the covered state.
///
/// Because the filter is sound in both directions, a search run with the
/// index enabled is bit-identical to one without it.
pub fn edge_signature(state: StateView<'_>, _interner: &dyn TypeTable) -> BTreeSet<Edge> {
    state
        .pit
        .edges()
        .iter()
        .copied()
        .filter(|e| !e.is_neq())
        .collect()
}

#[derive(Debug, Default)]
struct GroupIndex {
    /// Posting lists: edge → arena ids whose signature contains the edge.
    postings: HashMap<Edge, Vec<u32>>,
    /// Signature size per state.
    sizes: HashMap<u32, usize>,
    /// States with an empty signature.
    empty: Vec<u32>,
    /// States marked removed (lazily filtered out of query results).
    removed: HashSet<u32>,
}

/// Inverted index over active states used to filter coverage candidates.
///
/// All operations take `&self`: mutation goes through the per-group write
/// locks, so one index can serve concurrent readers (and writers of
/// disjoint groups) from many worker threads.
#[derive(Debug)]
pub struct StateIndex {
    shards: Vec<RwLock<HashMap<GroupKey, Arc<RwLock<GroupIndex>>>>>,
}

impl Default for StateIndex {
    fn default() -> Self {
        StateIndex {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl StateIndex {
    /// An empty index.
    pub fn new() -> Self {
        StateIndex::default()
    }

    /// Build a compact index over a fixed set of states.
    ///
    /// The repeated-reachability post-pass uses this to index the final
    /// (post-prune) active set by position: unlike the search's live
    /// index, the result carries no removal tombstones and no inactive
    /// entries, so candidate queries need no per-hit activity filtering.
    pub fn over_states<'a, I>(states: I, interner: &dyn TypeTable) -> Self
    where
        I: IntoIterator<Item = (u32, StateView<'a>)>,
    {
        let index = StateIndex::new();
        for (id, state) in states {
            index.insert(id, state, interner);
        }
        index
    }

    /// The group of a state, if it exists yet.
    fn group(&self, key: &GroupKey) -> Option<Arc<RwLock<GroupIndex>>> {
        self.shards[shard_of(key)].read().unwrap().get(key).cloned()
    }

    /// The group of a state, created on first use.
    fn group_or_insert(&self, key: GroupKey) -> Arc<RwLock<GroupIndex>> {
        if let Some(group) = self.group(&key) {
            return group;
        }
        let mut shard = self.shards[shard_of(&key)].write().unwrap();
        Arc::clone(shard.entry(key).or_default())
    }

    /// Insert a state under the given id.
    pub fn insert(&self, id: u32, state: StateView<'_>, interner: &dyn TypeTable) {
        let group = self.group_or_insert(group_key(state));
        let signature = edge_signature(state, interner);
        let mut group = group.write().unwrap();
        group.removed.remove(&id);
        group.sizes.insert(id, signature.len());
        if signature.is_empty() {
            group.empty.push(id);
        } else {
            for edge in signature {
                group.postings.entry(edge).or_default().push(id);
            }
        }
    }

    /// Mark a state as removed (lazily filtered out of query results).
    pub fn remove(&self, id: u32, state: StateView<'_>) {
        if let Some(group) = self.group(&group_key(state)) {
            group.write().unwrap().removed.insert(id);
        }
    }

    /// Candidate states whose signature is a *subset* of the query's
    /// signature — the only states that can possibly cover the query under
    /// ≼ (their types are less restrictive).
    pub fn subset_candidates(&self, state: StateView<'_>, interner: &dyn TypeTable) -> Vec<u32> {
        self.subset_candidates_bounded(state, interner, usize::MAX)
            .expect("an unbounded query always returns")
    }

    /// Like [`StateIndex::subset_candidates`], but gives up (returns
    /// `None`) when answering would walk more than `budget` posting
    /// entries.  A query's cost is the total length of the posting lists
    /// of the query's signature edges; when high-frequency edges make that
    /// exceed the cost of the caller's coarser fallback (typically a scan
    /// of the state's whole discrete group), filtering through the index
    /// is a net loss and the caller should scan instead.
    pub fn subset_candidates_bounded(
        &self,
        state: StateView<'_>,
        interner: &dyn TypeTable,
        budget: usize,
    ) -> Option<Vec<u32>> {
        let Some(group) = self.group(&group_key(state)) else {
            return Some(Vec::new());
        };
        let signature = edge_signature(state, interner);
        let group = group.read().unwrap();
        let cost: usize = signature
            .iter()
            .map(|edge| group.postings.get(edge).map_or(0, Vec::len))
            .sum();
        if cost > budget {
            return None;
        }
        let mut hits: HashMap<u32, usize> = HashMap::new();
        for edge in &signature {
            if let Some(list) = group.postings.get(edge) {
                for &id in list {
                    *hits.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<u32> = group
            .empty
            .iter()
            .copied()
            .filter(|id| !group.removed.contains(id))
            .collect();
        out.extend(hits.into_iter().filter_map(|(id, count)| {
            (!group.removed.contains(&id) && count == group.sizes[&id]).then_some(id)
        }));
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// Candidate states whose signature is a *superset* of the query's
    /// signature — the only states that the query can possibly cover under
    /// ≼.
    pub fn superset_candidates(&self, state: StateView<'_>, interner: &dyn TypeTable) -> Vec<u32> {
        let Some(group) = self.group(&group_key(state)) else {
            return Vec::new();
        };
        let signature = edge_signature(state, interner);
        let group = group.read().unwrap();
        let mut result: Option<HashSet<u32>> = None;
        if signature.is_empty() {
            // Every state of the group is a superset of the empty signature.
            let mut all: HashSet<u32> = group.sizes.keys().copied().collect();
            all.retain(|id| !group.removed.contains(id));
            let mut out: Vec<u32> = all.into_iter().collect();
            out.sort_unstable();
            return out;
        }
        for edge in &signature {
            let list: HashSet<u32> = group
                .postings
                .get(edge)
                .map(|l| l.iter().copied().collect())
                .unwrap_or_default();
            result = Some(match result {
                None => list,
                Some(prev) => prev.intersection(&list).copied().collect(),
            });
            if result.as_ref().is_some_and(HashSet::is_empty) {
                return Vec::new();
            }
        }
        let mut out: Vec<u32> = result
            .unwrap_or_default()
            .into_iter()
            .filter(|id| !group.removed.contains(id))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ExprUniverse;
    use crate::pit::{Pit, PitBuilder};
    use crate::product::ProductState;
    use crate::psi::{Psi, StoredTypeInterner};
    use std::collections::BTreeSet as StdBTreeSet;
    use verifas_model::schema::attr::data;
    use verifas_model::{
        Condition, DataValue, DatabaseSchema, SpecBuilder, TaskBuilder, VarId, VarRef,
    };

    fn universe() -> ExprUniverse {
        let mut db = DatabaseSchema::new();
        db.add_relation("R", vec![data("a")]).unwrap();
        let mut root = TaskBuilder::new("Root");
        root.data_var("x");
        root.data_var("y");
        root.service_parts("noop", Condition::True, Condition::True, vec![], None);
        let spec = SpecBuilder::new("idx", db, root.build()).build().unwrap();
        ExprUniverse::build(
            &spec,
            spec.root(),
            &[],
            &StdBTreeSet::from([DataValue::str("a"), DataValue::str("b")]),
        )
    }

    fn state_with(pit: Pit) -> ProductState {
        ProductState {
            psi: Psi::with_pit(pit),
            buchi: 0,
            closed: false,
        }
    }

    fn pit_eq(u: &ExprUniverse, var: u32, c: &str) -> Pit {
        let x = u.var_expr(VarRef::Task(VarId::new(var))).unwrap();
        let k = u.const_expr(&DataValue::str(c)).unwrap();
        let mut b = PitBuilder::new(u);
        b.assert_eq(x, k);
        b.finish().unwrap()
    }

    #[test]
    fn subset_and_superset_candidates() {
        let u = universe();
        let interner = StoredTypeInterner::new();
        let index = StateIndex::new();
        let empty = state_with(Pit::empty());
        let xa = state_with(pit_eq(&u, 0, "a"));
        let both = state_with(pit_eq(&u, 0, "a").conjoin(&pit_eq(&u, 1, "b"), &u).unwrap());
        index.insert(0, empty.view(), &interner);
        index.insert(1, xa.view(), &interner);
        index.insert(2, both.view(), &interner);
        // Subset candidates of `both`: everything with signature ⊆ both.
        assert_eq!(
            index.subset_candidates(both.view(), &interner),
            vec![0, 1, 2]
        );
        // Subset candidates of `xa`: the empty state and itself.
        assert_eq!(index.subset_candidates(xa.view(), &interner), vec![0, 1]);
        // Superset candidates of `xa`: itself and `both`.
        assert_eq!(index.superset_candidates(xa.view(), &interner), vec![1, 2]);
        // Superset candidates of the empty state: all.
        assert_eq!(
            index.superset_candidates(empty.view(), &interner),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn removed_states_disappear_from_queries() {
        let u = universe();
        let interner = StoredTypeInterner::new();
        let index = StateIndex::new();
        let xa = state_with(pit_eq(&u, 0, "a"));
        index.insert(0, xa.view(), &interner);
        let empty = state_with(Pit::empty());
        index.insert(1, empty.view(), &interner);
        index.remove(0, xa.view());
        assert_eq!(index.subset_candidates(xa.view(), &interner), vec![1]);
        assert_eq!(
            index.superset_candidates(xa.view(), &interner),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn groups_partition_by_discrete_state() {
        let u = universe();
        let interner = StoredTypeInterner::new();
        let index = StateIndex::new();
        let mut a = state_with(pit_eq(&u, 0, "a"));
        index.insert(0, a.view(), &interner);
        a.buchi = 3;
        // Different automaton state: no candidates from the other group.
        assert!(index.subset_candidates(a.view(), &interner).is_empty());
        assert!(index.superset_candidates(a.view(), &interner).is_empty());
    }

    #[test]
    fn concurrent_queries_and_inserts_are_safe() {
        let u = universe();
        let interner = StoredTypeInterner::new();
        let index = StateIndex::new();
        let states: Vec<ProductState> = (0..4)
            .map(|i| {
                let mut s = state_with(pit_eq(&u, 0, "a"));
                s.buchi = i;
                s
            })
            .collect();
        for (i, s) in states.iter().enumerate() {
            index.insert(i as u32, s.view(), &interner);
        }
        std::thread::scope(|scope| {
            for s in &states {
                let index = &index;
                let interner = &interner;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let subs = index.subset_candidates(s.view(), interner);
                        assert_eq!(subs.len(), 1);
                        assert_eq!(index.superset_candidates(s.view(), interner), subs);
                    }
                });
            }
        });
    }
}
