//! `ci_bench` — the quick-mode benchmark CI runs on every push.
//!
//! Measures single-run states/sec of the Karp–Miller search, sequential
//! versus N worker threads, on a fixed set of workload scenarios, and
//! writes the results as `BENCH_parallel_search.json` so the perf
//! trajectory of the repository is recorded per commit.  Three gates:
//!
//! 1. **Correctness** — the verdict and witness of every scenario must be
//!    identical across thread counts (the parallel search is
//!    deterministic by design; a divergence is a bug, not noise).
//! 2. **Regression** — with `--baseline <path>`, states/sec may not drop
//!    more than 30% below the committed baseline for any scenario.
//! 3. **Speedup** — with `--min-speedup <x>`, the best parallel speedup
//!    across scenarios must reach `x`.  This gate is enforced only when
//!    the host actually has at least `--threads` cores (a single-core
//!    runner cannot exhibit parallel speedup and reports it
//!    informationally instead).
//!
//! Usage:
//!
//! ```text
//! ci_bench [--quick] [--threads N] [--seed N] [--out PATH]
//!          [--baseline PATH] [--update-baseline] [--min-speedup X]
//! ```

use std::time::Instant;
use verifas_core::{
    Engine as VerifasEngine, Json, SearchLimits, VerificationOutcome, VerificationReport,
    VerifierOptions,
};
use verifas_ltl::LtlFoProperty;
use verifas_model::HasSpec;
use verifas_workloads::{generate, generate_properties, real_workflows, SyntheticParams};

struct Args {
    quick: bool,
    threads: usize,
    seed: u64,
    out: String,
    baseline: Option<String>,
    update_baseline: bool,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: 4,
        seed: 2017,
        out: "BENCH_parallel_search.json".to_owned(),
        baseline: None,
        update_baseline: false,
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed"),
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--update-baseline" => args.update_baseline = true,
            "--min-speedup" => {
                args.min_speedup = Some(value("--min-speedup").parse().expect("--min-speedup"))
            }
            other => panic!("unknown flag {other:?} (see ci_bench source for usage)"),
        }
    }
    args
}

struct Scenario {
    name: String,
    spec: HasSpec,
    property: LtlFoProperty,
}

/// The benchmark scenarios: for each chosen workload, the generated
/// property with the largest sequential search (probed under a small
/// budget), so the measurement exercises the search loop rather than the
/// setup path.
fn scenarios(args: &Args) -> Vec<Scenario> {
    let mut specs: Vec<HasSpec> = real_workflows().into_iter().take(3).collect();
    let synthetic_count = if args.quick { 1 } else { 2 };
    for offset in 0..synthetic_count {
        if let Some(spec) = generate(SyntheticParams::small(), args.seed + offset) {
            specs.push(spec);
        }
    }
    // The probe only needs search *size and speed*, so it runs cheap:
    // small state budget, no repeated-reachability phase.  Workloads whose
    // probe explores fewer than 64 states, or at under 1000 states/sec,
    // are skipped — the benchmark measures the search loop, and a scenario
    // that cannot reach its state budget in seconds would make the smoke
    // job crawl.
    let probe_limits = SearchLimits {
        max_states: 600,
        max_millis: 3_000,
    };
    let mut out = Vec::new();
    for spec in specs {
        let engine = VerifasEngine::load_with_options(
            spec.clone(),
            VerifierOptions {
                check_repeated: false,
                limits: probe_limits,
                ..VerifierOptions::default()
            },
        )
        .expect("workload specs are valid");
        let mut best: Option<(usize, LtlFoProperty)> = None;
        for property in generate_properties(&spec, args.seed) {
            let start = Instant::now();
            let Ok(report) = engine.check(&property) else {
                continue;
            };
            let states = report.stats.states_created;
            let per_sec = states as f64 / start.elapsed().as_secs_f64().max(1e-9);
            if per_sec < 1_000.0 {
                continue;
            }
            if best.as_ref().is_none_or(|(b, _)| states > *b) {
                best = Some((states, property));
            }
            // A probe that fills the budget is as big as we can tell
            // apart; stop probing this spec.
            if best
                .as_ref()
                .is_some_and(|(b, _)| *b >= probe_limits.max_states)
            {
                break;
            }
        }
        if let Some((states, property)) = best {
            if states >= 64 {
                out.push(Scenario {
                    name: format!("{}/{}", spec.name, property.name),
                    spec,
                    property,
                });
            }
        }
    }
    out
}

struct Measurement {
    report: VerificationReport,
    millis: f64,
    states: usize,
}

fn measure(scenario: &Scenario, threads: usize, args: &Args) -> Measurement {
    let limits = SearchLimits {
        max_states: if args.quick { 3_000 } else { 12_000 },
        // Wall-clock limits would make the stop point scheduling
        // dependent; the state budget is the only limiter.
        max_millis: 600_000,
    };
    // `check_repeated: false` keeps the measurement on the Karp–Miller
    // search itself (the repeated-reachability cycle detection is a
    // separate, still-sequential post-pass; see ROADMAP).
    let engine = VerifasEngine::load_with_options(
        scenario.spec.clone(),
        VerifierOptions {
            search_threads: threads,
            check_repeated: false,
            limits,
            ..VerifierOptions::default()
        },
    )
    .expect("workload specs are valid");
    let samples = if args.quick { 1 } else { 3 };
    let mut best: Option<Measurement> = None;
    // One warm-up plus `samples` timed runs; keep the fastest (criterion
    // quick-mode style: the minimum is the least noisy location estimate
    // for a deterministic workload).
    for sample in 0..=samples {
        let start = Instant::now();
        let report = engine.check(&scenario.property).expect("scenario verifies");
        let millis = start.elapsed().as_secs_f64() * 1_000.0;
        if sample == 0 {
            continue;
        }
        let states =
            report.stats.states_created + report.repeated_stats.map_or(0, |s| s.states_created);
        if best.as_ref().is_none_or(|b| millis < b.millis) {
            best = Some(Measurement {
                report,
                millis,
                states,
            });
        }
    }
    best.expect("at least one timed sample")
}

struct Row {
    name: String,
    verdict: &'static str,
    states: usize,
    seq_millis: f64,
    par_millis: f64,
    seq_states_per_sec: f64,
    par_states_per_sec: f64,
    speedup: f64,
    /// Fraction of the sequential run spent in the (parallelisable) plan
    /// phase — an upper-bound predictor of multi-core speedup.
    plan_fraction: f64,
}

fn verdict_name(outcome: VerificationOutcome) -> &'static str {
    match outcome {
        VerificationOutcome::Satisfied => "satisfied",
        VerificationOutcome::Violated => "violated",
        VerificationOutcome::Inconclusive => "inconclusive",
    }
}

fn results_json(rows: &[Row], args: &Args, host_parallelism: usize) -> Json {
    Json::Obj(vec![
        ("schema".to_owned(), Json::Num(1.0)),
        ("threads".to_owned(), Json::Num(args.threads as f64)),
        (
            "host_parallelism".to_owned(),
            Json::Num(host_parallelism as f64),
        ),
        ("quick".to_owned(), Json::Bool(args.quick)),
        (
            "best_speedup".to_owned(),
            Json::Num(rows.iter().map(|r| r.speedup).fold(0.0, f64::max)),
        ),
        (
            "scenarios".to_owned(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(r.name.clone())),
                            ("verdict".to_owned(), Json::Str(r.verdict.to_owned())),
                            ("states".to_owned(), Json::Num(r.states as f64)),
                            ("seq_millis".to_owned(), Json::Num(r.seq_millis)),
                            ("par_millis".to_owned(), Json::Num(r.par_millis)),
                            (
                                "seq_states_per_sec".to_owned(),
                                Json::Num(r.seq_states_per_sec),
                            ),
                            (
                                "par_states_per_sec".to_owned(),
                                Json::Num(r.par_states_per_sec),
                            ),
                            ("speedup".to_owned(), Json::Num(r.speedup)),
                            ("plan_fraction".to_owned(), Json::Num(r.plan_fraction)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn num_member(value: &Json, key: &str) -> Option<f64> {
    match value.get(key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Compare against the committed baseline; returns the failure messages.
fn regression_failures(rows: &[Row], baseline: &Json) -> Vec<String> {
    const TOLERANCE: f64 = 0.7; // fail on a >30% drop
    let mut failures = Vec::new();
    let Some(scenarios) = baseline.get("scenarios").and_then(Json::as_array) else {
        return vec!["baseline file has no `scenarios` array".to_owned()];
    };
    for row in rows {
        let Some(base) = scenarios
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(row.name.as_str()))
        else {
            continue; // new scenario: nothing to regress against
        };
        for (metric, current) in [
            ("seq_states_per_sec", row.seq_states_per_sec),
            ("par_states_per_sec", row.par_states_per_sec),
        ] {
            if let Some(reference) = num_member(base, metric) {
                if current < reference * TOLERANCE {
                    failures.push(format!(
                        "{}: {metric} regressed to {current:.0} (baseline {reference:.0}, \
                         floor {:.0})",
                        row.name,
                        reference * TOLERANCE
                    ));
                }
            }
        }
    }
    failures
}

fn main() {
    let args = parse_args();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scenarios = scenarios(&args);
    assert!(
        !scenarios.is_empty(),
        "no benchmark scenario produced a sizeable search"
    );
    println!(
        "ci_bench: {} scenarios, 1 vs {} threads on a {}-core host{}",
        scenarios.len(),
        args.threads,
        host_parallelism,
        if args.quick { " (quick mode)" } else { "" }
    );
    let mut rows = Vec::new();
    let mut verdict_failures = Vec::new();
    for scenario in &scenarios {
        let sequential = measure(scenario, 1, &args);
        let parallel = measure(scenario, args.threads, &args);
        if sequential.report.outcome != parallel.report.outcome
            || sequential.report.witness != parallel.report.witness
        {
            verdict_failures.push(format!(
                "{}: sequential {:?} vs {}-thread {:?}",
                scenario.name, sequential.report.outcome, args.threads, parallel.report.outcome
            ));
        }
        let busy_micros: u64 = sequential
            .report
            .workers
            .iter()
            .map(|w| w.busy_micros)
            .sum();
        let row = Row {
            name: scenario.name.clone(),
            verdict: verdict_name(sequential.report.outcome),
            states: sequential.states,
            seq_millis: sequential.millis,
            par_millis: parallel.millis,
            seq_states_per_sec: sequential.states as f64 / (sequential.millis / 1_000.0),
            par_states_per_sec: parallel.states as f64 / (parallel.millis / 1_000.0),
            speedup: sequential.millis / parallel.millis,
            plan_fraction: (busy_micros as f64 / 1_000.0 / sequential.millis).min(1.0),
        };
        println!(
            "  {:<48} {:>12} {:>8} states  seq {:>9.1}ms  par {:>9.1}ms  speedup {:.2}x               plan {:.0}%",
            row.name,
            row.verdict,
            row.states,
            row.seq_millis,
            row.par_millis,
            row.speedup,
            row.plan_fraction * 100.0
        );
        rows.push(row);
    }
    let doc = results_json(&rows, &args, host_parallelism);
    std::fs::write(&args.out, format!("{doc}\n")).expect("write results file");
    println!("wrote {}", args.out);

    let mut failed = false;
    if !verdict_failures.is_empty() {
        failed = true;
        eprintln!("FAIL: verdicts diverged across thread counts:");
        for failure in &verdict_failures {
            eprintln!("  {failure}");
        }
    }
    if let Some(path) = &args.baseline {
        if args.update_baseline {
            std::fs::write(path, format!("{doc}\n")).expect("write baseline file");
            println!("updated baseline {path}");
        } else {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let baseline = Json::parse(&text).expect("baseline file parses");
                    // Absolute states/sec only regresses meaningfully
                    // against a baseline captured on comparable hardware;
                    // across machine classes the comparison is advisory
                    // until the baseline is refreshed where the job runs.
                    let baseline_cores = baseline
                        .get("host_parallelism")
                        .and_then(Json::as_u64)
                        .unwrap_or(0) as usize;
                    let comparable = baseline_cores == host_parallelism;
                    let failures = regression_failures(&rows, &baseline);
                    if !failures.is_empty() && comparable {
                        failed = true;
                        eprintln!("FAIL: >30% throughput regression vs {path}:");
                        for failure in &failures {
                            eprintln!("  {failure}");
                        }
                    } else if !failures.is_empty() {
                        eprintln!(
                            "warning: throughput below baseline {path}, but the baseline was \
                             captured on a {baseline_cores}-core host and this is a \
                             {host_parallelism}-core host — advisory only; refresh with \
                             --update-baseline from this hardware class:"
                        );
                        for failure in &failures {
                            eprintln!("  {failure}");
                        }
                    } else {
                        println!("no regression vs {path}");
                    }
                }
                Err(e) => {
                    failed = true;
                    eprintln!("FAIL: cannot read baseline {path}: {e}");
                }
            }
        }
    }
    if let Some(min) = args.min_speedup {
        let best = rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
        if host_parallelism >= args.threads {
            if best < min {
                failed = true;
                eprintln!("FAIL: best parallel speedup {best:.2}x is below the required {min:.2}x");
            } else {
                println!("best parallel speedup {best:.2}x (required {min:.2}x)");
            }
        } else {
            println!(
                "note: host has {host_parallelism} core(s) < {} threads; speedup gate skipped \
                 (best observed {best:.2}x)",
                args.threads
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
