//! `ci_bench` — the quick-mode benchmark CI runs on every push.
//!
//! Measures single-run states/sec of the Karp–Miller search, sequential
//! versus N worker threads, on a fixed set of workload scenarios, and
//! writes the results as `BENCH_parallel_search.json` so the perf
//! trajectory of the repository is recorded per commit.  Three gates:
//!
//! 1. **Correctness** — the verdict and witness of every scenario must be
//!    identical across thread counts (the parallel search is
//!    deterministic by design; a divergence is a bug, not noise).
//! 2. **Regression** — with `--baseline <path>`, states/sec may not drop
//!    more than 30% below the committed baseline for any scenario.
//! 3. **Speedup** — with `--min-speedup <x>`, the best parallel speedup
//!    across scenarios must reach `x`.  This gate is enforced only when
//!    the host actually has at least `--threads` cores (a single-core
//!    runner cannot exhibit parallel speedup and reports it
//!    informationally instead).
//!
//! A fourth gate covers the repeated-reachability post-pass: the
//! cycle-heavy `cycle_grid` scenario runs to exhaustion and the indexed,
//! single-pass SCC cycle detection is timed against the retained
//! O(active²) reference implementation (`--min-repeated-speedup`), with
//! the parallel edge construction additionally gated on multi-core hosts
//! (`--min-repeated-parallel-speedup`, self-disabling like gate 3).
//!
//! A fifth gate covers the sharded batch scheduler: the skewed
//! one-heavy-plus-many-light batch of `skewed_grid` is run end to end
//! through `Engine::check_all_with` under the flat pool and under the
//! sharded scheduler (`--min-batch-speedup`, enforced only on hosts with
//! at least `--threads` cores, like gate 3 — a flat pool leaves the heavy
//! straggler on one core, the sharded scheduler hands it the whole
//! budget once the light properties drain).  Per-property verdicts,
//! witnesses and search sizes must be identical across both policies and
//! a sequential reference.
//!
//! A sixth gate covers incremental re-verification (`Engine::load_delta`,
//! see `crates/core/src/delta.rs`): one edit-loop iteration on the
//! `cycle_grid` liveness check, cold (fresh engine, full search) versus
//! warm (delta-loaded from a prior session — the unchanged slice carries
//! its preprocessing and finished report across, so the re-check answers
//! from the carried report).  `--min-incremental-speedup` gates the
//! cold/warm ratio; a replay arm (renamed property, recorded enumerations
//! replayed through the carried memo) is measured alongside, and both
//! warm verdicts must be bit-identical to the cold one.
//!
//! A seventh gate covers the arena state layout: the million-state
//! open/close lattice is searched single-threaded under the arena-backed
//! grouped layout and under the retained pre-overhaul reference layout
//! (boxed nodes, full linear coverage scans), and the states/sec ratio is
//! gated with `--min-layout-speedup`.  The two layouts are additionally
//! cross-checked bit for bit at the reference arm's state budget, and the
//! arena arm's peak memory estimate is recorded alongside.
//!
//! Usage:
//!
//! ```text
//! ci_bench [--quick] [--threads N] [--seed N] [--out PATH]
//!          [--baseline PATH] [--update-baseline] [--min-speedup X]
//!          [--min-repeated-speedup X] [--min-repeated-parallel-speedup X]
//!          [--min-batch-speedup X] [--min-incremental-speedup X]
//!          [--min-layout-speedup X]
//! ```

use std::time::Instant;
use verifas_core::static_analysis::ConstraintGraph;
use verifas_core::{
    find_infinite_violation_reference, find_infinite_violation_with, BatchOptions, CoverageKind,
    Engine as VerifasEngine, Json, KarpMillerSearch, ProductSystem, RepeatedOutcome, ReuseMode,
    SchedulePolicy, SearchControl, SearchLimits, VerificationOutcome, VerificationReport,
    VerifierOptions,
};
use verifas_ltl::LtlFoProperty;
use verifas_model::HasSpec;
use verifas_workloads::{
    cycle_grid, cycle_grid_liveness, cycle_torus, generate, generate_properties,
    lattice_false_property, open_close_lattice, real_workflows, skewed_batch_properties,
    skewed_grid, SyntheticParams,
};

struct Args {
    quick: bool,
    threads: usize,
    seed: u64,
    out: String,
    baseline: Option<String>,
    update_baseline: bool,
    min_speedup: Option<f64>,
    min_repeated_speedup: Option<f64>,
    min_repeated_parallel_speedup: Option<f64>,
    min_batch_speedup: Option<f64>,
    min_incremental_speedup: Option<f64>,
    min_layout_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: 4,
        seed: 2017,
        out: "BENCH_parallel_search.json".to_owned(),
        baseline: None,
        update_baseline: false,
        min_speedup: None,
        min_repeated_speedup: None,
        min_repeated_parallel_speedup: None,
        min_batch_speedup: None,
        min_incremental_speedup: None,
        min_layout_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed"),
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--update-baseline" => args.update_baseline = true,
            "--min-speedup" => {
                args.min_speedup = Some(value("--min-speedup").parse().expect("--min-speedup"))
            }
            "--min-repeated-speedup" => {
                args.min_repeated_speedup = Some(
                    value("--min-repeated-speedup")
                        .parse()
                        .expect("--min-repeated-speedup"),
                )
            }
            "--min-repeated-parallel-speedup" => {
                args.min_repeated_parallel_speedup = Some(
                    value("--min-repeated-parallel-speedup")
                        .parse()
                        .expect("--min-repeated-parallel-speedup"),
                )
            }
            "--min-batch-speedup" => {
                args.min_batch_speedup = Some(
                    value("--min-batch-speedup")
                        .parse()
                        .expect("--min-batch-speedup"),
                )
            }
            "--min-incremental-speedup" => {
                args.min_incremental_speedup = Some(
                    value("--min-incremental-speedup")
                        .parse()
                        .expect("--min-incremental-speedup"),
                )
            }
            "--min-layout-speedup" => {
                args.min_layout_speedup = Some(
                    value("--min-layout-speedup")
                        .parse()
                        .expect("--min-layout-speedup"),
                )
            }
            other => panic!("unknown flag {other:?} (see ci_bench source for usage)"),
        }
    }
    args
}

struct Scenario {
    name: String,
    spec: HasSpec,
    property: LtlFoProperty,
}

/// The benchmark scenarios: for each chosen workload, the generated
/// property with the largest sequential search (probed under a small
/// budget), so the measurement exercises the search loop rather than the
/// setup path.
fn scenarios(args: &Args) -> Vec<Scenario> {
    let mut specs: Vec<HasSpec> = real_workflows().into_iter().take(3).collect();
    let synthetic_count = if args.quick { 1 } else { 2 };
    for offset in 0..synthetic_count {
        if let Some(spec) = generate(SyntheticParams::small(), args.seed + offset) {
            specs.push(spec);
        }
    }
    // The probe only needs search *size and speed*, so it runs cheap:
    // small state budget, no repeated-reachability phase.  Workloads whose
    // probe explores fewer than 64 states, or at under 1000 states/sec,
    // are skipped — the benchmark measures the search loop, and a scenario
    // that cannot reach its state budget in seconds would make the smoke
    // job crawl.
    let probe_limits = SearchLimits {
        max_states: 600,
        max_millis: 3_000,
    };
    let mut out = Vec::new();
    for spec in specs {
        let engine = VerifasEngine::load_with_options(
            spec.clone(),
            VerifierOptions {
                check_repeated: false,
                limits: probe_limits,
                ..VerifierOptions::default()
            },
        )
        .expect("workload specs are valid");
        let mut best: Option<(usize, LtlFoProperty)> = None;
        for property in generate_properties(&spec, args.seed) {
            let start = Instant::now();
            let Ok(report) = engine.check(&property) else {
                continue;
            };
            let states = report.stats.states_created;
            let per_sec = states as f64 / start.elapsed().as_secs_f64().max(1e-9);
            if per_sec < 1_000.0 {
                continue;
            }
            if best.as_ref().is_none_or(|(b, _)| states > *b) {
                best = Some((states, property));
            }
            // A probe that fills the budget is as big as we can tell
            // apart; stop probing this spec.
            if best
                .as_ref()
                .is_some_and(|(b, _)| *b >= probe_limits.max_states)
            {
                break;
            }
        }
        if let Some((states, property)) = best {
            if states >= 64 {
                out.push(Scenario {
                    name: format!("{}/{}", spec.name, property.name),
                    spec,
                    property,
                });
            }
        }
    }
    out
}

struct Measurement {
    report: VerificationReport,
    millis: f64,
    states: usize,
}

fn measure(scenario: &Scenario, threads: usize, args: &Args) -> Measurement {
    let limits = SearchLimits {
        max_states: if args.quick { 3_000 } else { 12_000 },
        // Wall-clock limits would make the stop point scheduling
        // dependent; the state budget is the only limiter.
        max_millis: 600_000,
    };
    // `check_repeated: false` keeps the measurement on the Karp–Miller
    // search itself (the repeated-reachability cycle detection is a
    // separate, still-sequential post-pass; see ROADMAP).
    let engine = VerifasEngine::load_with_options(
        scenario.spec.clone(),
        VerifierOptions {
            search_threads: threads,
            check_repeated: false,
            limits,
            ..VerifierOptions::default()
        },
    )
    .expect("workload specs are valid");
    let samples = if args.quick { 1 } else { 3 };
    let mut best: Option<Measurement> = None;
    // One warm-up plus `samples` timed runs; keep the fastest (criterion
    // quick-mode style: the minimum is the least noisy location estimate
    // for a deterministic workload).
    for sample in 0..=samples {
        let start = Instant::now();
        let report = engine.check(&scenario.property).expect("scenario verifies");
        let millis = start.elapsed().as_secs_f64() * 1_000.0;
        if sample == 0 {
            continue;
        }
        let states =
            report.stats.states_created + report.repeated_stats.map_or(0, |s| s.states_created);
        if best.as_ref().is_none_or(|b| millis < b.millis) {
            best = Some(Measurement {
                report,
                millis,
                states,
            });
        }
    }
    best.expect("at least one timed sample")
}

struct Row {
    name: String,
    verdict: &'static str,
    states: usize,
    seq_millis: f64,
    par_millis: f64,
    seq_states_per_sec: f64,
    par_states_per_sec: f64,
    speedup: f64,
    /// Fraction of the sequential run spent in the (parallelisable) plan
    /// phase — an upper-bound predictor of multi-core speedup.
    plan_fraction: f64,
}

/// The repeated-reachability post-pass measurement: a cycle-heavy
/// scenario run to exhaustion, timed through the retained O(active²)
/// reference implementation, the indexed single-pass SCC implementation
/// (sequential) and the same with parallel edge construction.  Post-pass
/// times are tracked in microseconds — at quick-mode scale the new pass
/// is sub-millisecond and coarser units would quantize the gate ratios
/// to noise.
struct RepeatedRow {
    name: String,
    verdict: &'static str,
    active: usize,
    edges: usize,
    sccs: usize,
    candidate_hit_rate: f64,
    /// End-to-end times (auxiliary search + post-pass) per arm.
    reference_millis: f64,
    seq_millis: f64,
    par_millis: f64,
    /// Post-pass (cycle detection) times per arm: for the reference, the
    /// end-to-end time minus the same sample's search time; for the new
    /// implementation, the edge-construction plus SCC time it reports.
    reference_postpass_micros: f64,
    seq_postpass_micros: f64,
    par_postpass_micros: f64,
    /// Post-pass time ratio: reference / sequential single-pass.
    speedup_vs_reference: f64,
    /// Post-pass time ratio: sequential / parallel edge construction.
    parallel_speedup: f64,
    /// Edge-construction throughput of the sequential single-pass arm
    /// (the quantity the baseline regression gate compares).
    edges_per_sec: f64,
}

/// One timed arm: best-of-N end-to-end and post-pass times — both taken
/// from the *same* best-end-to-end sample, so a ratio never mixes the
/// wall clock of one run with the phase split of another — plus that
/// sample's outcome for the determinism checks.
struct RepeatedArm {
    total_millis: f64,
    postpass_micros: f64,
    outcome: RepeatedOutcome,
}

/// Time one analysis arm (one warm-up, then `samples` timed runs, keep
/// the fastest).  `postpass` extracts the post-pass time in microseconds
/// from a finished run and its wall-clock milliseconds.
fn time_repeated(
    samples: usize,
    mut run: impl FnMut() -> RepeatedOutcome,
    postpass: impl Fn(&RepeatedOutcome, f64) -> f64,
) -> RepeatedArm {
    let mut best: Option<RepeatedArm> = None;
    for sample in 0..=samples {
        let start = Instant::now();
        let outcome = run();
        let total_millis = start.elapsed().as_secs_f64() * 1_000.0;
        if sample == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|b| total_millis < b.total_millis) {
            best = Some(RepeatedArm {
                total_millis,
                postpass_micros: postpass(&outcome, total_millis),
                outcome,
            });
        }
    }
    best.expect("at least one timed sample ran")
}

/// Measure one cycle-heavy scenario across the three arms.
fn measure_repeated_scenario(
    spec: HasSpec,
    args: &Args,
    failures: &mut Vec<String>,
) -> RepeatedRow {
    let property = cycle_grid_liveness(&spec);
    let limits = SearchLimits {
        max_states: 100_000,
        // The state budget is the only limiter (wall-clock stops would be
        // scheduling dependent).
        max_millis: 600_000,
    };
    // The same prepared product the engine pipeline would verify: static
    // analysis applied, artifact relations handled.
    let mut product = ProductSystem::new(&spec, &property, true).expect("cycle grid is valid");
    let graph = ConstraintGraph::build(&spec, property.task, &property, &product.task.universe);
    let removed = graph.non_violating_edges(&product.task.universe);
    product.set_static_removed(removed);
    let samples = if args.quick { 1 } else { 3 };
    // The reference does not track its post-pass separately: subtract the
    // same sample's search time from its wall clock (the search time is
    // millisecond-granular, fine against post-passes this size).
    let reference_postpass = |outcome: &RepeatedOutcome, total_millis: f64| -> f64 {
        ((total_millis - outcome.stats.elapsed_ms as f64) * 1_000.0).max(1.0)
    };
    let cycle_postpass = |outcome: &RepeatedOutcome, _total: f64| -> f64 {
        let cycle = outcome.cycle.unwrap_or_default();
        ((cycle.edge_micros + cycle.scc_micros) as f64).max(1.0)
    };
    let reference = time_repeated(
        samples,
        || {
            find_infinite_violation_reference(
                &product,
                CoverageKind::StrictSubsumption,
                true,
                limits,
            )
        },
        reference_postpass,
    );
    let seq = time_repeated(
        samples,
        || {
            find_infinite_violation_with(
                &product,
                CoverageKind::StrictSubsumption,
                true,
                limits,
                1,
                &mut SearchControl::default(),
            )
        },
        cycle_postpass,
    );
    let par = time_repeated(
        samples,
        || {
            find_infinite_violation_with(
                &product,
                CoverageKind::StrictSubsumption,
                true,
                limits,
                args.threads,
                &mut SearchControl::default(),
            )
        },
        cycle_postpass,
    );
    let name = format!("{}/{}", spec.name, property.name);
    if seq.outcome.stats.limit_reached {
        failures.push(format!("{name}: scenario did not exhaust its search"));
    }
    let prefix = |outcome: &RepeatedOutcome| outcome.violation.as_ref().map(|v| v.prefix.clone());
    let seq_prefix = prefix(&seq.outcome);
    if prefix(&par.outcome) != seq_prefix {
        failures.push(format!(
            "{name}: witness diverged between 1 and {} threads",
            args.threads
        ));
    }
    if prefix(&reference.outcome) != seq_prefix {
        failures.push(format!(
            "{name}: witness diverged from the reference implementation"
        ));
    }
    let cycle = seq.outcome.cycle.unwrap_or_default();
    RepeatedRow {
        verdict: if seq.outcome.violation.is_some() {
            "violated"
        } else if seq.outcome.limit_reached {
            "inconclusive"
        } else {
            "satisfied"
        },
        name,
        active: cycle.states,
        edges: cycle.edges,
        sccs: cycle.sccs,
        candidate_hit_rate: cycle.candidate_hit_rate(),
        reference_millis: reference.total_millis,
        seq_millis: seq.total_millis,
        par_millis: par.total_millis,
        reference_postpass_micros: reference.postpass_micros,
        seq_postpass_micros: seq.postpass_micros,
        par_postpass_micros: par.postpass_micros,
        speedup_vs_reference: reference.postpass_micros / seq.postpass_micros,
        parallel_speedup: seq.postpass_micros / par.postpass_micros,
        edges_per_sec: cycle.edges as f64 / (seq.postpass_micros / 1_000_000.0),
    }
}

/// The cycle-heavy scenario set: a wide 2D grid where the signature index
/// filters candidates to almost exactly the true edges (the
/// speedup-vs-reference showcase), and a high-dimensional torus whose
/// short value cycles defeat posting-list filtering — the pass falls back
/// to discrete-group scans there, which is the edge-construction shape
/// with enough per-source work for parallel workers to show a speedup.
fn measure_repeated(args: &Args, failures: &mut Vec<String>) -> Vec<RepeatedRow> {
    let grid = cycle_grid(if args.quick { 12 } else { 16 });
    let torus = cycle_torus(if args.quick { 5 } else { 6 }, 3);
    vec![
        measure_repeated_scenario(grid, args, failures),
        measure_repeated_scenario(torus, args, failures),
    ]
}

/// The sharded-batch measurement: the skewed one-heavy-plus-many-light
/// batch of `skewed_grid`, run end to end through `check_all_with` under
/// the flat pool and the sharded scheduler with the same core budget.
struct BatchRow {
    name: String,
    properties: usize,
    flat_millis: f64,
    sharded_millis: f64,
    /// End-to-end batch time ratio: flat / sharded.
    speedup: f64,
    /// Batch throughput of the sharded arm (the quantity the baseline
    /// regression gate compares).
    sharded_props_per_sec: f64,
}

/// Time one batch arm: one warm-up plus `samples` timed runs, keep the
/// fastest together with its reports (for the determinism cross-check).
fn time_batch(
    samples: usize,
    mut run: impl FnMut() -> Vec<Result<VerificationReport, verifas_core::VerifasError>>,
) -> (f64, Vec<VerificationReport>) {
    let mut best: Option<(f64, Vec<VerificationReport>)> = None;
    for sample in 0..=samples {
        let start = Instant::now();
        let reports = run();
        let millis = start.elapsed().as_secs_f64() * 1_000.0;
        if sample == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| millis < *b) {
            let reports = reports
                .into_iter()
                .map(|r| r.expect("skewed-batch properties verify"))
                .collect();
            best = Some((millis, reports));
        }
    }
    best.expect("at least one timed sample ran")
}

fn measure_batch(args: &Args, failures: &mut Vec<String>) -> BatchRow {
    let spec = skewed_grid(if args.quick { 12 } else { 16 });
    let properties = skewed_batch_properties(&spec, 7);
    let engine = VerifasEngine::load_with_options(
        spec.clone(),
        VerifierOptions {
            limits: SearchLimits {
                max_states: 100_000,
                // The state budget is the only limiter (wall-clock stops
                // would be scheduling dependent).
                max_millis: 600_000,
            },
            ..VerifierOptions::default()
        },
    )
    .expect("skewed grid is valid");
    let name = format!("{}/skewed-batch", spec.name);
    let samples = if args.quick { 1 } else { 3 };
    let batch = |schedule: SchedulePolicy| BatchOptions {
        batch_threads: args.threads,
        schedule,
    };
    let (flat_millis, flat_reports) = time_batch(samples, || {
        engine.check_all_with(&properties, batch(SchedulePolicy::Flat))
    });
    let (sharded_millis, sharded_reports) = time_batch(samples, || {
        engine.check_all_with(&properties, batch(SchedulePolicy::Sharded))
    });
    // Determinism cross-check: both policies must reproduce a sequential
    // reference bit for bit (verdict, witness, search size).
    for (i, property) in properties.iter().enumerate() {
        let reference = engine.check(property).expect("sequential check succeeds");
        for (policy, report) in [("flat", &flat_reports[i]), ("sharded", &sharded_reports[i])] {
            if report.outcome != reference.outcome
                || report.witness != reference.witness
                || report.stats.states_created != reference.stats.states_created
            {
                failures.push(format!(
                    "{name}: property {} diverged under {policy} scheduling",
                    property.name
                ));
            }
        }
    }
    BatchRow {
        name,
        properties: properties.len(),
        flat_millis,
        sharded_millis,
        speedup: flat_millis / sharded_millis,
        sharded_props_per_sec: properties.len() as f64 / (sharded_millis / 1_000.0),
    }
}

/// The incremental edit-loop measurement: one iteration of the
/// check–edit–re-check loop on the `cycle_grid` liveness property.
struct IncrementalRow {
    name: String,
    /// A cold iteration: fresh `Engine::load_with_options` plus the full
    /// search.
    cold_millis: f64,
    /// A warm iteration: `Engine::load_delta` from a prior session (the
    /// unchanged slice carries preprocessing and report), then the same
    /// `check` — answered from the carried report, no search.
    warm_millis: f64,
    /// A replay iteration: delta-load in replay mode, then check a
    /// *renamed* (otherwise identical) property — the report cache
    /// misses, the search runs, the carried memo replays the recorded
    /// spec-side enumerations.
    replay_millis: f64,
    /// Edit-loop time ratio: cold / warm (the `--min-incremental-speedup`
    /// gate).
    speedup: f64,
    /// Edit-loop time ratio: cold / replay.
    replay_speedup: f64,
    /// Warm iteration throughput (the quantity the baseline regression
    /// gate compares).
    warm_iterations_per_sec: f64,
}

fn measure_incremental(args: &Args, failures: &mut Vec<String>) -> IncrementalRow {
    let spec = cycle_grid(if args.quick { 12 } else { 16 });
    let property = cycle_grid_liveness(&spec);
    let options = VerifierOptions {
        limits: SearchLimits {
            max_states: 100_000,
            // The state budget is the only limiter (wall-clock stops
            // would be scheduling dependent).
            max_millis: 600_000,
        },
        ..VerifierOptions::default()
    };
    let name = format!("{}/{}", spec.name, property.name);
    let samples = if args.quick { 1 } else { 3 };
    // One warm-up plus `samples` timed runs per arm, keep the fastest
    // (with its report, for the determinism cross-check).
    let time_arm = |run: &mut dyn FnMut() -> VerificationReport| {
        let mut best: Option<(f64, VerificationReport)> = None;
        for sample in 0..=samples {
            let start = Instant::now();
            let report = run();
            let millis = start.elapsed().as_secs_f64() * 1_000.0;
            if sample == 0 {
                continue;
            }
            if best.as_ref().is_none_or(|(b, _)| millis < *b) {
                best = Some((millis, report));
            }
        }
        best.expect("at least one timed sample ran")
    };
    let (cold_millis, cold) = time_arm(&mut || {
        VerifasEngine::load_with_options(spec.clone(), options)
            .expect("cycle grid is valid")
            .check(&property)
            .expect("cycle grid verifies")
    });
    // The prior session the edit loop resumes from: it has checked the
    // property once, so its preprocessing and report are there to carry.
    let prior = VerifasEngine::load_with_reuse(spec.clone(), options, ReuseMode::Preproc).unwrap();
    prior.check(&property).expect("cycle grid verifies");
    let (warm_millis, warm) = time_arm(&mut || {
        let (engine, _) =
            VerifasEngine::load_delta(&prior, spec.clone(), ReuseMode::Preproc).unwrap();
        engine.check(&property).expect("cycle grid verifies")
    });
    let recorder =
        VerifasEngine::load_with_reuse(spec.clone(), options, ReuseMode::Replay).unwrap();
    recorder.check(&property).expect("cycle grid verifies");
    let mut renamed = property.clone();
    renamed.name = format!("{}-edited", property.name);
    let (replay_millis, replayed) = time_arm(&mut || {
        let (engine, _) =
            VerifasEngine::load_delta(&recorder, spec.clone(), ReuseMode::Replay).unwrap();
        engine.check(&renamed).expect("cycle grid verifies")
    });
    // Determinism cross-check: both warm arms must reproduce the cold
    // verdict, witness and search size bit for bit.
    for (arm, report) in [("warm", &warm), ("replay", &replayed)] {
        if report.outcome != cold.outcome
            || report.witness != cold.witness
            || report.stats.states_created != cold.stats.states_created
        {
            failures.push(format!("{name}: {arm} incremental run diverged from cold"));
        }
    }
    IncrementalRow {
        name,
        cold_millis,
        warm_millis,
        replay_millis,
        speedup: cold_millis / warm_millis,
        replay_speedup: cold_millis / replay_millis,
        warm_iterations_per_sec: 1_000.0 / warm_millis,
    }
}

/// The state-layout measurement: the open/close lattice searched raw
/// (no engine pipeline, no repeated-reachability pass) and
/// single-threaded, once under the arena-backed grouped layout and once
/// under the retained pre-overhaul reference layout.
struct LayoutRow {
    name: String,
    /// States created per arm — the arms run under *different* state
    /// budgets (the reference layout is orders of magnitude slower, and
    /// its per-state cost grows with the node count, so capping it low
    /// flatters it; the reported speedup is therefore conservative).
    new_states: usize,
    reference_states: usize,
    new_millis: f64,
    reference_millis: f64,
    new_states_per_sec: f64,
    reference_states_per_sec: f64,
    /// States/sec ratio: arena layout / reference layout (the
    /// `--min-layout-speedup` gate).
    layout_speedup: f64,
    /// The arena arm's `estimated_bytes` at the end of its (larger) run —
    /// the same deterministic estimate the memory budget charges against,
    /// recorded so the per-state footprint of the layout is tracked.
    peak_bytes_estimate: usize,
}

/// Run one single-threaded lattice search arm to its state budget and
/// return `(states_created, best_millis, final estimated_bytes)` plus the
/// identity the cross-check compares: the state count and the exact
/// active-node id set.
#[allow(clippy::type_complexity)]
fn time_layout_arm(
    product: &ProductSystem,
    reference_layout: bool,
    max_states: usize,
    samples: usize,
) -> (usize, f64, usize, (usize, usize, Vec<usize>)) {
    let limits = SearchLimits {
        max_states,
        // The state budget is the only limiter (wall-clock stops would be
        // scheduling dependent).
        max_millis: 600_000,
    };
    let mut best: Option<(usize, f64, usize, (usize, usize, Vec<usize>))> = None;
    for sample in 0..=samples {
        let mut search = KarpMillerSearch::new(product, CoverageKind::Subsumption, false, limits);
        search.reference_layout = reference_layout;
        search.threads = 1;
        let start = Instant::now();
        search.run();
        let millis = start.elapsed().as_secs_f64() * 1_000.0;
        if sample == 0 {
            continue;
        }
        if best.as_ref().is_none_or(|(_, b, _, _)| millis < *b) {
            best = Some((
                search.stats.states_created,
                millis,
                search.estimated_bytes(),
                (
                    search.stats.states_created,
                    search.len(),
                    search.active_nodes(),
                ),
            ));
        }
    }
    best.expect("at least one timed sample ran")
}

fn measure_layout(args: &Args, failures: &mut Vec<String>) -> LayoutRow {
    let spec = open_close_lattice(16, 16);
    let property = lattice_false_property(&spec);
    let product = ProductSystem::new(&spec, &property, true).expect("lattice is valid");
    let name = format!("{}/{}", spec.name, property.name);
    let samples = if args.quick { 1 } else { 2 };
    // The arena arm gets a budget deep enough that group scans, arena
    // interning and the publication protocol dominate; the reference arm
    // gets a budget it can clear in seconds (its full linear scans are
    // quadratic in the node count).
    let new_cap = if args.quick { 30_000 } else { 120_000 };
    let reference_cap = if args.quick { 4_000 } else { 8_000 };
    let (new_states, new_millis, peak_bytes_estimate, _) =
        time_layout_arm(&product, false, new_cap, samples);
    let (reference_states, reference_millis, _, reference_id) =
        time_layout_arm(&product, true, reference_cap, samples);
    // Cross-check: at the *same* budget the two layouts must materialise
    // bit-identical trees (the grouped scan visits exactly the states the
    // full scan does, in the same order).
    let (_, _, _, new_id) = time_layout_arm(&product, false, reference_cap, 1);
    if new_id != reference_id {
        failures.push(format!(
            "{name}: arena and reference layouts diverged at {reference_cap} states \
             (arena {new_id:?} vs reference {reference_id:?})"
        ));
    }
    let new_states_per_sec = new_states as f64 / (new_millis / 1_000.0);
    let reference_states_per_sec = reference_states as f64 / (reference_millis / 1_000.0);
    LayoutRow {
        name,
        new_states,
        reference_states,
        new_millis,
        reference_millis,
        new_states_per_sec,
        reference_states_per_sec,
        layout_speedup: new_states_per_sec / reference_states_per_sec,
        peak_bytes_estimate,
    }
}

fn layout_json(row: &LayoutRow) -> Json {
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(row.name.clone())),
        ("new_states".to_owned(), Json::Num(row.new_states as f64)),
        (
            "reference_states".to_owned(),
            Json::Num(row.reference_states as f64),
        ),
        ("new_millis".to_owned(), Json::Num(row.new_millis)),
        (
            "reference_millis".to_owned(),
            Json::Num(row.reference_millis),
        ),
        (
            "new_states_per_sec".to_owned(),
            Json::Num(row.new_states_per_sec),
        ),
        (
            "reference_states_per_sec".to_owned(),
            Json::Num(row.reference_states_per_sec),
        ),
        ("layout_speedup".to_owned(), Json::Num(row.layout_speedup)),
        (
            "peak_bytes_estimate".to_owned(),
            Json::Num(row.peak_bytes_estimate as f64),
        ),
    ])
}

fn incremental_json(row: &IncrementalRow) -> Json {
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(row.name.clone())),
        ("cold_millis".to_owned(), Json::Num(row.cold_millis)),
        ("warm_millis".to_owned(), Json::Num(row.warm_millis)),
        ("replay_millis".to_owned(), Json::Num(row.replay_millis)),
        ("speedup".to_owned(), Json::Num(row.speedup)),
        ("replay_speedup".to_owned(), Json::Num(row.replay_speedup)),
        (
            "warm_iterations_per_sec".to_owned(),
            Json::Num(row.warm_iterations_per_sec),
        ),
    ])
}

fn batch_json(row: &BatchRow) -> Json {
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(row.name.clone())),
        ("properties".to_owned(), Json::Num(row.properties as f64)),
        ("flat_millis".to_owned(), Json::Num(row.flat_millis)),
        ("sharded_millis".to_owned(), Json::Num(row.sharded_millis)),
        ("speedup".to_owned(), Json::Num(row.speedup)),
        (
            "sharded_props_per_sec".to_owned(),
            Json::Num(row.sharded_props_per_sec),
        ),
    ])
}

fn repeated_json(row: &RepeatedRow) -> Json {
    Json::Obj(vec![
        ("name".to_owned(), Json::Str(row.name.clone())),
        ("verdict".to_owned(), Json::Str(row.verdict.to_owned())),
        ("active".to_owned(), Json::Num(row.active as f64)),
        ("edges".to_owned(), Json::Num(row.edges as f64)),
        ("sccs".to_owned(), Json::Num(row.sccs as f64)),
        (
            "candidate_hit_rate".to_owned(),
            Json::Num(row.candidate_hit_rate),
        ),
        (
            "reference_millis".to_owned(),
            Json::Num(row.reference_millis),
        ),
        ("seq_millis".to_owned(), Json::Num(row.seq_millis)),
        ("par_millis".to_owned(), Json::Num(row.par_millis)),
        (
            "reference_postpass_micros".to_owned(),
            Json::Num(row.reference_postpass_micros),
        ),
        (
            "seq_postpass_micros".to_owned(),
            Json::Num(row.seq_postpass_micros),
        ),
        (
            "par_postpass_micros".to_owned(),
            Json::Num(row.par_postpass_micros),
        ),
        (
            "speedup_vs_reference".to_owned(),
            Json::Num(row.speedup_vs_reference),
        ),
        (
            "parallel_speedup".to_owned(),
            Json::Num(row.parallel_speedup),
        ),
        ("edges_per_sec".to_owned(), Json::Num(row.edges_per_sec)),
    ])
}

fn verdict_name(outcome: VerificationOutcome) -> &'static str {
    match outcome {
        VerificationOutcome::Satisfied => "satisfied",
        VerificationOutcome::Violated => "violated",
        VerificationOutcome::Inconclusive => "inconclusive",
    }
}

fn results_json(
    rows: &[Row],
    repeated: &[RepeatedRow],
    batch: &BatchRow,
    incremental: &IncrementalRow,
    layout: &LayoutRow,
    args: &Args,
    host_parallelism: usize,
) -> Json {
    Json::Obj(vec![
        // Version 2 added the `repeated_reachability` section; version 3
        // the `batch_sharded` section; version 4 the `incremental`
        // section; version 5 the `state_layout` section.
        ("schema".to_owned(), Json::Num(5.0)),
        ("threads".to_owned(), Json::Num(args.threads as f64)),
        (
            "host_parallelism".to_owned(),
            Json::Num(host_parallelism as f64),
        ),
        ("quick".to_owned(), Json::Bool(args.quick)),
        (
            "best_speedup".to_owned(),
            Json::Num(rows.iter().map(|r| r.speedup).fold(0.0, f64::max)),
        ),
        (
            "scenarios".to_owned(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(r.name.clone())),
                            ("verdict".to_owned(), Json::Str(r.verdict.to_owned())),
                            ("states".to_owned(), Json::Num(r.states as f64)),
                            ("seq_millis".to_owned(), Json::Num(r.seq_millis)),
                            ("par_millis".to_owned(), Json::Num(r.par_millis)),
                            (
                                "seq_states_per_sec".to_owned(),
                                Json::Num(r.seq_states_per_sec),
                            ),
                            (
                                "par_states_per_sec".to_owned(),
                                Json::Num(r.par_states_per_sec),
                            ),
                            ("speedup".to_owned(), Json::Num(r.speedup)),
                            ("plan_fraction".to_owned(), Json::Num(r.plan_fraction)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "repeated_reachability".to_owned(),
            Json::Arr(repeated.iter().map(repeated_json).collect()),
        ),
        ("batch_sharded".to_owned(), batch_json(batch)),
        ("incremental".to_owned(), incremental_json(incremental)),
        ("state_layout".to_owned(), layout_json(layout)),
    ])
}

fn num_member(value: &Json, key: &str) -> Option<f64> {
    match value.get(key) {
        Some(Json::Num(n)) => Some(*n),
        _ => None,
    }
}

/// Compare against the committed baseline; returns the failure messages.
fn regression_failures(
    rows: &[Row],
    repeated: &[RepeatedRow],
    batch: &BatchRow,
    incremental: &IncrementalRow,
    layout: &LayoutRow,
    baseline: &Json,
) -> Vec<String> {
    const TOLERANCE: f64 = 0.7; // fail on a >30% drop
    let mut failures = Vec::new();
    // The arena state layout regresses on its states/sec (absent from
    // pre-PR-9 baselines: nothing to compare).
    if let Some(base) = baseline.get("state_layout") {
        if base.get("name").and_then(Json::as_str) == Some(layout.name.as_str()) {
            if let Some(reference) = num_member(base, "new_states_per_sec") {
                let current = layout.new_states_per_sec;
                if current < reference * TOLERANCE {
                    failures.push(format!(
                        "{}: new_states_per_sec regressed to {current:.0} \
                         (baseline {reference:.0}, floor {:.0})",
                        layout.name,
                        reference * TOLERANCE
                    ));
                }
            }
            // Peak memory regresses upward: the estimate is deterministic
            // for a deterministic search, so any growth is a layout
            // change, not noise — allow the same 30% headroom.
            if let Some(reference) = num_member(base, "peak_bytes_estimate") {
                let current = layout.peak_bytes_estimate as f64;
                if current > reference / TOLERANCE {
                    failures.push(format!(
                        "{}: peak_bytes_estimate grew to {current:.0} \
                         (baseline {reference:.0}, ceiling {:.0})",
                        layout.name,
                        reference / TOLERANCE
                    ));
                }
            }
        }
    }
    // The incremental edit loop regresses on its warm-iteration
    // throughput (absent from pre-PR-7 baselines: nothing to compare).
    if let Some(base) = baseline.get("incremental") {
        if base.get("name").and_then(Json::as_str) == Some(incremental.name.as_str()) {
            if let Some(reference) = num_member(base, "warm_iterations_per_sec") {
                let current = incremental.warm_iterations_per_sec;
                if current < reference * TOLERANCE {
                    failures.push(format!(
                        "{}: warm_iterations_per_sec regressed to {current:.1} \
                         (baseline {reference:.1}, floor {:.1})",
                        incremental.name,
                        reference * TOLERANCE
                    ));
                }
            }
        }
    }
    // The sharded batch regresses on its end-to-end throughput (absent
    // from pre-PR-4 baselines: nothing to compare).
    if let Some(base) = baseline.get("batch_sharded") {
        if base.get("name").and_then(Json::as_str) == Some(batch.name.as_str()) {
            if let Some(reference) = num_member(base, "sharded_props_per_sec") {
                let current = batch.sharded_props_per_sec;
                if current < reference * TOLERANCE {
                    failures.push(format!(
                        "{}: sharded_props_per_sec regressed to {current:.2} \
                         (baseline {reference:.2}, floor {:.2})",
                        batch.name,
                        reference * TOLERANCE
                    ));
                }
            }
        }
    }
    // The repeated-reachability pass regresses on its edge-construction
    // throughput (absent from pre-PR-3 baselines: nothing to compare).
    if let Some(bases) = baseline
        .get("repeated_reachability")
        .and_then(Json::as_array)
    {
        for row in repeated {
            let Some(base) = bases
                .iter()
                .find(|b| b.get("name").and_then(Json::as_str) == Some(row.name.as_str()))
            else {
                continue;
            };
            if let Some(reference) = num_member(base, "edges_per_sec") {
                let current = row.edges_per_sec;
                if current < reference * TOLERANCE {
                    failures.push(format!(
                        "{}: edges_per_sec regressed to {current:.0} (baseline {reference:.0}, \
                         floor {:.0})",
                        row.name,
                        reference * TOLERANCE
                    ));
                }
            }
        }
    }
    let Some(scenarios) = baseline.get("scenarios").and_then(Json::as_array) else {
        return vec!["baseline file has no `scenarios` array".to_owned()];
    };
    for row in rows {
        let Some(base) = scenarios
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(row.name.as_str()))
        else {
            continue; // new scenario: nothing to regress against
        };
        for (metric, current) in [
            ("seq_states_per_sec", row.seq_states_per_sec),
            ("par_states_per_sec", row.par_states_per_sec),
        ] {
            if let Some(reference) = num_member(base, metric) {
                if current < reference * TOLERANCE {
                    failures.push(format!(
                        "{}: {metric} regressed to {current:.0} (baseline {reference:.0}, \
                         floor {:.0})",
                        row.name,
                        reference * TOLERANCE
                    ));
                }
            }
        }
    }
    failures
}

fn main() {
    let args = parse_args();
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scenarios = scenarios(&args);
    assert!(
        !scenarios.is_empty(),
        "no benchmark scenario produced a sizeable search"
    );
    println!(
        "ci_bench: {} scenarios, 1 vs {} threads on a {}-core host{}",
        scenarios.len(),
        args.threads,
        host_parallelism,
        if args.quick { " (quick mode)" } else { "" }
    );
    let mut rows = Vec::new();
    let mut verdict_failures = Vec::new();
    for scenario in &scenarios {
        let sequential = measure(scenario, 1, &args);
        let parallel = measure(scenario, args.threads, &args);
        if sequential.report.outcome != parallel.report.outcome
            || sequential.report.witness != parallel.report.witness
        {
            verdict_failures.push(format!(
                "{}: sequential {:?} vs {}-thread {:?}",
                scenario.name, sequential.report.outcome, args.threads, parallel.report.outcome
            ));
        }
        let busy_micros: u64 = sequential
            .report
            .workers
            .iter()
            .map(|w| w.busy_micros)
            .sum();
        let row = Row {
            name: scenario.name.clone(),
            verdict: verdict_name(sequential.report.outcome),
            states: sequential.states,
            seq_millis: sequential.millis,
            par_millis: parallel.millis,
            seq_states_per_sec: sequential.states as f64 / (sequential.millis / 1_000.0),
            par_states_per_sec: parallel.states as f64 / (parallel.millis / 1_000.0),
            speedup: sequential.millis / parallel.millis,
            plan_fraction: (busy_micros as f64 / 1_000.0 / sequential.millis).min(1.0),
        };
        println!(
            "  {:<48} {:>12} {:>8} states  seq {:>9.1}ms  par {:>9.1}ms  speedup {:.2}x               plan {:.0}%",
            row.name,
            row.verdict,
            row.states,
            row.seq_millis,
            row.par_millis,
            row.speedup,
            row.plan_fraction * 100.0
        );
        rows.push(row);
    }
    let repeated = measure_repeated(&args, &mut verdict_failures);
    for row in &repeated {
        println!(
            "  {:<48} {:>12} {:>8} active  post-pass: ref {:>8.1}ms  seq {:>8.1}ms  par {:>8.1}ms  vs-ref {:.1}x  par {:.2}x  (end-to-end {:.0}/{:.0}/{:.0}ms)",
            row.name,
            row.verdict,
            row.active,
            row.reference_postpass_micros / 1_000.0,
            row.seq_postpass_micros / 1_000.0,
            row.par_postpass_micros / 1_000.0,
            row.speedup_vs_reference,
            row.parallel_speedup,
            row.reference_millis,
            row.seq_millis,
            row.par_millis,
        );
    }
    let batch = measure_batch(&args, &mut verdict_failures);
    println!(
        "  {:<48} {:>12} {:>8} props   batch: flat {:>9.1}ms  sharded {:>9.1}ms  speedup {:.2}x",
        batch.name,
        "batch",
        batch.properties,
        batch.flat_millis,
        batch.sharded_millis,
        batch.speedup,
    );
    let incremental = measure_incremental(&args, &mut verdict_failures);
    println!(
        "  {:<48} {:>12}          edit-loop: cold {:>9.1}ms  warm {:>9.3}ms  replay {:>9.1}ms  speedup {:.0}x / {:.2}x",
        incremental.name,
        "incremental",
        incremental.cold_millis,
        incremental.warm_millis,
        incremental.replay_millis,
        incremental.speedup,
        incremental.replay_speedup,
    );
    let layout = measure_layout(&args, &mut verdict_failures);
    println!(
        "  {:<48} {:>12}          layout: arena {:>8.0}/s  reference {:>8.0}/s  speedup {:.1}x  peak ~{:.0} MB",
        layout.name,
        "state-layout",
        layout.new_states_per_sec,
        layout.reference_states_per_sec,
        layout.layout_speedup,
        layout.peak_bytes_estimate as f64 / 1e6,
    );
    let doc = results_json(
        &rows,
        &repeated,
        &batch,
        &incremental,
        &layout,
        &args,
        host_parallelism,
    );
    std::fs::write(&args.out, format!("{doc}\n")).expect("write results file");
    println!("wrote {}", args.out);

    let mut failed = false;
    if !verdict_failures.is_empty() {
        failed = true;
        eprintln!("FAIL: verdicts diverged across thread counts:");
        for failure in &verdict_failures {
            eprintln!("  {failure}");
        }
    }
    let mut baseline_cores = 0usize;
    if let Some(path) = &args.baseline {
        if args.update_baseline {
            std::fs::write(path, format!("{doc}\n")).expect("write baseline file");
            println!("updated baseline {path}");
        } else {
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    let baseline = Json::parse(&text).expect("baseline file parses");
                    // Absolute states/sec only regresses meaningfully
                    // against a baseline captured on comparable hardware;
                    // across machine classes the comparison is advisory
                    // until the baseline is refreshed where the job runs.
                    baseline_cores = baseline
                        .get("host_parallelism")
                        .and_then(Json::as_u64)
                        .unwrap_or(0) as usize;
                    let comparable = baseline_cores == host_parallelism;
                    let failures = regression_failures(
                        &rows,
                        &repeated,
                        &batch,
                        &incremental,
                        &layout,
                        &baseline,
                    );
                    if !failures.is_empty() && comparable {
                        failed = true;
                        eprintln!("FAIL: >30% throughput regression vs {path}:");
                        for failure in &failures {
                            eprintln!("  {failure}");
                        }
                    } else if !failures.is_empty() {
                        eprintln!(
                            "warning: throughput below baseline {path}, but the baseline was \
                             captured on a {baseline_cores}-core host and this is a \
                             {host_parallelism}-core host — advisory only; refresh with \
                             --update-baseline from this hardware class:"
                        );
                        for failure in &failures {
                            eprintln!("  {failure}");
                        }
                    } else {
                        println!("no regression vs {path}");
                    }
                }
                Err(e) => {
                    failed = true;
                    eprintln!("FAIL: cannot read baseline {path}: {e}");
                }
            }
        }
    }
    if let Some(min) = args.min_speedup {
        let best = rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
        if host_parallelism >= args.threads {
            if best < min {
                failed = true;
                eprintln!("FAIL: best parallel speedup {best:.2}x is below the required {min:.2}x");
            } else {
                println!("best parallel speedup {best:.2}x (required {min:.2}x)");
            }
        } else {
            println!(
                "note: host has {host_parallelism} core(s) < {} threads; speedup gate skipped \
                 (best observed {best:.2}x)",
                args.threads
            );
        }
    }
    // Both repeated gates apply to the best scenario (mirroring the main
    // search's best-speedup gate): each scenario showcases one side of the
    // optimisation — the indexed grid the single-pass win, the scan-heavy
    // torus the parallel edge construction.
    let best_vs_reference = repeated
        .iter()
        .map(|r| r.speedup_vs_reference)
        .fold(0.0, f64::max);
    let best_parallel = repeated
        .iter()
        .map(|r| r.parallel_speedup)
        .fold(0.0, f64::max);
    if let Some(min) = args.min_repeated_speedup {
        if best_vs_reference < min {
            failed = true;
            eprintln!(
                "FAIL: repeated-reachability post-pass speedup vs the reference \
                 implementation is {best_vs_reference:.2}x, below the required {min:.2}x"
            );
        } else {
            println!(
                "repeated-reachability post-pass speedup vs reference {best_vs_reference:.2}x \
                 (required {min:.2}x)"
            );
        }
    }
    if let Some(min) = args.min_repeated_parallel_speedup {
        if host_parallelism < args.threads {
            println!(
                "note: host has {host_parallelism} core(s) < {} threads; repeated parallel \
                 speedup gate skipped (best observed {best_parallel:.2}x)",
                args.threads
            );
        } else if best_parallel >= min {
            println!(
                "repeated-reachability parallel speedup {best_parallel:.2}x \
                 (required {min:.2}x)"
            );
        } else if baseline_cores >= args.threads {
            // The committed baseline proves a multi-core host has measured
            // this number before: a miss now is a genuine regression.
            failed = true;
            eprintln!(
                "FAIL: repeated-reachability parallel speedup {best_parallel:.2}x is \
                 below the required {min:.2}x"
            );
        } else {
            // No multi-core measurement has ever been committed (the
            // baseline comes from a {baseline_cores}-core host); report
            // without failing until one is.
            println!(
                "warning: repeated-reachability parallel speedup {best_parallel:.2}x is \
                 below {min:.2}x, but the committed baseline was captured on a \
                 {baseline_cores}-core host — advisory until the baseline is refreshed \
                 from a host with at least {} cores",
                args.threads
            );
        }
    }
    if let Some(min) = args.min_batch_speedup {
        // Like the main search's speedup gate: a flat pool and a sharded
        // scheduler are indistinguishable on a host that cannot run the
        // heavy straggler's search in parallel to begin with.
        if host_parallelism >= args.threads {
            if batch.speedup < min {
                failed = true;
                eprintln!(
                    "FAIL: sharded batch speedup {:.2}x is below the required {min:.2}x",
                    batch.speedup
                );
            } else {
                println!(
                    "sharded batch speedup {:.2}x (required {min:.2}x)",
                    batch.speedup
                );
            }
        } else {
            println!(
                "note: host has {host_parallelism} core(s) < {} threads; sharded batch \
                 speedup gate skipped (observed {:.2}x)",
                args.threads, batch.speedup
            );
        }
    }
    if let Some(min) = args.min_incremental_speedup {
        // Unlike the parallel gates, the warm edit loop needs no spare
        // cores — the speedup comes from not redoing work, so the gate
        // holds on any host.
        if incremental.speedup < min {
            failed = true;
            eprintln!(
                "FAIL: incremental edit-loop speedup {:.2}x is below the required {min:.2}x",
                incremental.speedup
            );
        } else {
            println!(
                "incremental edit-loop speedup {:.0}x warm, {:.2}x replay (required {min:.2}x)",
                incremental.speedup, incremental.replay_speedup
            );
        }
    }
    if let Some(min) = args.min_layout_speedup {
        // Both arms are single-threaded, so this gate holds on any host.
        if layout.layout_speedup < min {
            failed = true;
            eprintln!(
                "FAIL: arena state-layout speedup {:.2}x is below the required {min:.2}x",
                layout.layout_speedup
            );
        } else {
            println!(
                "arena state-layout speedup {:.1}x (required {min:.2}x)",
                layout.layout_speedup
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
