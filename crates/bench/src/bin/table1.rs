//! Table 1: statistics of the two sets of workflows.

use verifas_bench::{build_workloads, HarnessConfig};
use verifas_workloads::synthetic::average_stats;

fn main() {
    let config = HarnessConfig::from_args();
    let workloads = build_workloads(&config);
    println!("Table 1: Statistics of the Two Sets of Workflows");
    println!(
        "{:<10} {:>5} {:>11} {:>7} {:>11} {:>10}",
        "Dataset", "Size", "#Relations", "#Tasks", "#Variables", "#Services"
    );
    for (name, set) in [
        ("Real", &workloads.real),
        ("Synthetic", &workloads.synthetic),
    ] {
        let (rels, tasks, vars, svcs) = average_stats(set);
        println!(
            "{:<10} {:>5} {:>11.3} {:>7.3} {:>11.2} {:>10.2}",
            name,
            set.len(),
            rels,
            tasks,
            vars,
            svcs
        );
    }
    println!();
    println!("Paper reports: Real 32 specs (3.563 relations, 3.219 tasks, 20.63 variables, 11.59 services);");
    println!(
        "               Synthetic 120 specs (5 relations, 5 tasks, 75 variables, 75 services)."
    );
}
