//! Table 3: mean and 5%-trimmed-mean speedup of each optimization —
//! state pruning (SP), static analysis (SA) and data-structure support
//! (DSS) — measured by re-running every verification with the optimization
//! disabled.

use verifas_bench::{
    build_workloads, mean_and_trimmed, properties_for, run_one, Engine, HarnessConfig,
};
use verifas_core::VerifierOptions;

fn main() {
    let config = HarnessConfig::from_args();
    let workloads = build_workloads(&config);
    println!("Table 3: Mean and Trimmed Mean (5%) of Speedups per Optimization");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Dataset", "SP mean", "SP trim", "SA mean", "SA trim", "DSS mean", "DSS trim"
    );
    for (name, set) in [
        ("Real", &workloads.real),
        ("Synthetic", &workloads.synthetic),
    ] {
        let mut speedups: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for spec in set {
            for property in properties_for(spec, &config) {
                let base = run_one(Engine::Verifas, spec, &property, config.limits, None);
                if base.failed {
                    continue;
                }
                for (i, opt) in ["SP", "SA", "DSS"].iter().enumerate() {
                    let options = VerifierOptions::default().without(opt);
                    let ablated = run_one(
                        Engine::Verifas,
                        spec,
                        &property,
                        config.limits,
                        Some(options),
                    );
                    let ablated_ms = if ablated.failed {
                        config.limits.max_millis as f64
                    } else {
                        ablated.millis
                    };
                    speedups[i].push(ablated_ms / base.millis.max(0.01));
                }
            }
        }
        let cells: Vec<(f64, f64)> = speedups.iter().map(|v| mean_and_trimmed(v)).collect();
        println!(
            "{:<10} {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x {:>11.2}x",
            name, cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
        );
    }
    println!();
    println!("Paper reports: SP 1586x/24.7x (real) and 322x/127x (synthetic); SA 1.80x/1.41x and");
    println!("28.8x/0.93x; DSS 1.87x/1.24x and 2.72x/1.58x.  State pruning should dominate.");
}
