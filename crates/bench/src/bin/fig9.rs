//! Figure 9: average verification time versus cyclomatic complexity.
//!
//! Prints one line per workflow: dataset, cyclomatic complexity, average
//! verification time over the twelve benchmark properties, and whether any
//! run failed — the series the paper plots (log-scale time against
//! complexity, with the 15-complexity threshold recommended by software
//! engineering practice).

use verifas_bench::{build_workloads, properties_for, run_one, Engine, HarnessConfig};
use verifas_workloads::cyclomatic_complexity;

fn main() {
    let config = HarnessConfig::from_args();
    let workloads = build_workloads(&config);
    println!("Figure 9: Average Running Time vs. Cyclomatic Complexity");
    println!(
        "{:<12} {:<34} {:>11} {:>13} {:>9}",
        "Dataset", "Workflow", "Complexity", "Avg time (ms)", "Timeouts"
    );
    let mut within_budget = 0usize;
    let mut low_complexity = 0usize;
    for (name, set) in [
        ("Real", &workloads.real),
        ("Synthetic", &workloads.synthetic),
    ] {
        for spec in set {
            let complexity = cyclomatic_complexity(spec);
            let mut total = 0.0;
            let mut failures = 0usize;
            let mut count = 0usize;
            for property in properties_for(spec, &config) {
                let m = run_one(Engine::Verifas, spec, &property, config.limits, None);
                if m.failed {
                    failures += 1;
                } else {
                    total += m.millis;
                    count += 1;
                }
            }
            let avg = if count == 0 {
                f64::NAN
            } else {
                total / count as f64
            };
            if complexity <= 15 {
                low_complexity += 1;
                if failures == 0 && avg <= 10_000.0 {
                    within_budget += 1;
                }
            }
            println!(
                "{:<12} {:<34} {:>11} {:>13.1} {:>9}",
                name, spec.name, complexity, avg, failures
            );
        }
    }
    println!();
    println!(
        "Workflows with cyclomatic complexity <= 15 verified without timeout within 10s: {within_budget}/{low_complexity}"
    );
    println!("Paper: 130/138 (~94%) of the <=15-complexity workflows verify within 10 seconds.");
}
