//! Section 4.2 "Overhead of Repeated-Reachability": compare the full
//! verifier against a configuration with the repeated-reachability module
//! turned off (overheads are computed over non-timed-out runs).

use verifas_bench::{build_workloads, properties_for, run_one, Engine, HarnessConfig};
use verifas_core::VerifierOptions;

fn main() {
    let config = HarnessConfig::from_args();
    let workloads = build_workloads(&config);
    println!("Overhead of the Repeated-Reachability Module");
    println!(
        "{:<10} {:>16} {:>16} {:>10}",
        "Dataset", "Full (ms)", "No-RR (ms)", "Overhead"
    );
    for (name, set) in [
        ("Real", &workloads.real),
        ("Synthetic", &workloads.synthetic),
    ] {
        let mut full = 0.0;
        let mut without = 0.0;
        let mut count = 0usize;
        for spec in set {
            for property in properties_for(spec, &config) {
                let a = run_one(Engine::Verifas, spec, &property, config.limits, None);
                let options = VerifierOptions {
                    check_repeated: false,
                    ..VerifierOptions::default()
                };
                let b = run_one(
                    Engine::Verifas,
                    spec,
                    &property,
                    config.limits,
                    Some(options),
                );
                if a.failed || b.failed {
                    continue;
                }
                full += a.millis;
                without += b.millis;
                count += 1;
            }
        }
        let overhead = if without > 0.0 {
            (full - without) / without * 100.0
        } else {
            0.0
        };
        println!(
            "{:<10} {:>16.1} {:>16.1} {:>9.1}%  ({count} runs)",
            name, full, without, overhead
        );
    }
    println!();
    println!("Paper reports overheads of 19.03% (real) and 13.55% (synthetic).");
}
