//! Table 4: average verification time per LTL template class.

use verifas_bench::{build_workloads, properties_for, run_one, Engine, HarnessConfig};
use verifas_ltl::all_templates;

fn main() {
    let config = HarnessConfig::from_args();
    let workloads = build_workloads(&config);
    let templates = all_templates();
    println!("Table 4: Average Running Time per LTL-FO Template");
    println!(
        "{:<42} {:<9} {:>12} {:>14}",
        "Template", "Class", "Real (ms)", "Synthetic (ms)"
    );
    for template in &templates {
        let mut cells = Vec::new();
        for set in [&workloads.real, &workloads.synthetic] {
            let mut total = 0.0;
            let mut count = 0usize;
            for spec in set {
                let properties = properties_for(spec, &config);
                let property = &properties[template.id];
                let m = run_one(Engine::Verifas, spec, property, config.limits, None);
                if !m.failed {
                    total += m.millis;
                    count += 1;
                }
            }
            cells.push(if count == 0 {
                0.0
            } else {
                total / count as f64
            });
        }
        println!(
            "{:<42} {:<9?} {:>12.1} {:>14.1}",
            template.name, template.class, cells[0], cells[1]
        );
    }
    println!();
    println!("Paper: every class stays within ~2x of the False baseline on both sets.");
}
