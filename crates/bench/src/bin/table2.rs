//! Table 2: average verification time and number of failed runs for the
//! baseline ("Spin-Opt" stand-in), VERIFAS-NoSet and VERIFAS on both
//! workload sets (12 LTL-FO properties per specification).

use verifas_bench::{
    aggregate, build_workloads, properties_for, run_one, Engine, HarnessConfig, RunMeasurement,
};

fn main() {
    let config = HarnessConfig::from_args();
    let workloads = build_workloads(&config);
    println!("Table 2: Average Elapsed Time and Number of Failed Runs");
    println!(
        "{:<28} {:>14} {:>7} {:>14} {:>7}",
        "Verifier", "Real avg(ms)", "#Fail", "Synth avg(ms)", "#Fail"
    );
    for engine in [Engine::SpinLike, Engine::VerifasNoSet, Engine::Verifas] {
        let mut row = Vec::new();
        for set in [&workloads.real, &workloads.synthetic] {
            let mut measurements: Vec<RunMeasurement> = Vec::new();
            for spec in set {
                for property in properties_for(spec, &config) {
                    measurements.push(run_one(engine, spec, &property, config.limits, None));
                }
            }
            row.push(aggregate(&measurements));
        }
        println!(
            "{:<28} {:>14.1} {:>7} {:>14.1} {:>7}",
            engine.name(),
            row[0].avg_millis,
            row[0].failures,
            row[1].avg_millis,
            row[1].failures
        );
    }
    println!();
    println!("Paper reports (10-min timeout, authors' testbed): Spin-Opt 2.97s / 3 fails (real),");
    println!("83.98s / 440 fails (synthetic); VERIFAS-NoSet 0.229s / 0 and 6.98s / 19;");
    println!(
        "VERIFAS 0.245s / 0 and 11.01s / 16.  Expect the same ordering, not the same numbers."
    );
}
