//! # verifas-bench — the experiment harness
//!
//! Shared machinery for the binaries that regenerate every table and
//! figure of the paper's evaluation (Section 4).  Each binary prints the
//! same rows/columns as the corresponding table; `EXPERIMENTS.md` records
//! paper-reported versus measured values.
//!
//! All binaries accept `--quick` to run on smaller workload sets with a
//! shorter per-run budget (useful in CI), and `--seed <n>` to change the
//! generator seed.

use std::time::Instant;
use verifas_core::{
    BaselineVerifier, Engine as VerifasEngine, SearchLimits, VerificationOutcome, VerifierOptions,
};
use verifas_ltl::LtlFoProperty;
use verifas_model::HasSpec;
use verifas_workloads::{generate_properties, generate_set, real_workflows, SyntheticParams};

/// Which engine/configuration a run uses (the three rows of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The baseline verifier (stand-in for the Spin-based "Spin-Opt").
    SpinLike,
    /// VERIFAS with artifact relations ignored.
    VerifasNoSet,
    /// Full VERIFAS.
    Verifas,
}

impl Engine {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Engine::SpinLike => "Spin-Opt (baseline stand-in)",
            Engine::VerifasNoSet => "VERIFAS-NoSet",
            Engine::Verifas => "VERIFAS",
        }
    }
}

/// One verification measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunMeasurement {
    /// Elapsed wall-clock milliseconds.
    pub millis: f64,
    /// `true` when the run failed (resource limit hit before an answer).
    pub failed: bool,
    /// The verdict (meaningful only when `failed` is false).
    pub outcome: VerificationOutcome,
    /// States created by the main search.
    pub states: usize,
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Per-run resource limits (plays the role of the paper's 10-minute /
    /// 8 GB budget, scaled down).
    pub limits: SearchLimits,
    /// Number of synthetic specifications.
    pub synthetic_count: usize,
    /// Synthetic generator parameters.
    pub synthetic_params: SyntheticParams,
    /// Seed for workload and property generation.
    pub seed: u64,
}

impl HarnessConfig {
    /// The default configuration: the full real set (32 workflows), a
    /// synthetic set of 120 and a 5-second / 50k-state budget per run.
    pub fn standard() -> Self {
        HarnessConfig {
            limits: SearchLimits {
                max_states: 50_000,
                max_millis: 5_000,
            },
            synthetic_count: 120,
            synthetic_params: SyntheticParams::default(),
            seed: 2017,
        }
    }

    /// A reduced configuration for `--quick` runs.
    pub fn quick() -> Self {
        HarnessConfig {
            limits: SearchLimits {
                max_states: 5_000,
                max_millis: 1_000,
            },
            synthetic_count: 12,
            synthetic_params: SyntheticParams::small(),
            seed: 2017,
        }
    }

    /// Parse `--quick` / `--seed n` from the command line.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut config = if args.iter().any(|a| a == "--quick") {
            HarnessConfig::quick()
        } else {
            HarnessConfig::standard()
        };
        if let Some(pos) = args.iter().position(|a| a == "--seed") {
            if let Some(seed) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
                config.seed = seed;
            }
        }
        config
    }
}

/// The two workload sets of the evaluation.
pub struct Workloads {
    /// The real-style set.
    pub real: Vec<HasSpec>,
    /// The synthetic set.
    pub synthetic: Vec<HasSpec>,
}

/// Build both workload sets.
pub fn build_workloads(config: &HarnessConfig) -> Workloads {
    Workloads {
        real: real_workflows(),
        synthetic: generate_set(config.synthetic_params, config.synthetic_count, config.seed),
    }
}

/// The twelve benchmark properties of a specification.
pub fn properties_for(spec: &HasSpec, config: &HarnessConfig) -> Vec<LtlFoProperty> {
    generate_properties(spec, config.seed)
}

/// Run one (engine, specification, property) verification and measure it.
///
/// The timed region covers the verification itself (including the
/// per-property preprocessing); loading the spec into the engine — a deep
/// clone plus validation the borrowing baseline arm never pays — happens
/// before the clock starts, so the Table-2/3 comparisons stay apples to
/// apples.
pub fn run_one(
    engine: Engine,
    spec: &HasSpec,
    property: &LtlFoProperty,
    limits: SearchLimits,
    options_override: Option<VerifierOptions>,
) -> RunMeasurement {
    let (outcome, states, start) = match engine {
        Engine::SpinLike => {
            let start = Instant::now();
            match BaselineVerifier::new(spec, property, limits) {
                Ok(v) => {
                    let r = v.verify();
                    (r.outcome, r.stats.states_created, start)
                }
                Err(_) => (VerificationOutcome::Inconclusive, 0, start),
            }
        }
        Engine::VerifasNoSet | Engine::Verifas => {
            let mut options = options_override.unwrap_or_default();
            options.limits = limits;
            options.handle_artifact_relations = engine == Engine::Verifas
                && options_override.is_none_or(|o| o.handle_artifact_relations);
            let loaded = VerifasEngine::load_with_options(spec.clone(), options);
            let start = Instant::now();
            match loaded.and_then(|e| e.check(property)) {
                Ok(r) => (r.outcome, r.stats.states_created, start),
                Err(_) => (VerificationOutcome::Inconclusive, 0, start),
            }
        }
    };
    RunMeasurement {
        millis: start.elapsed().as_secs_f64() * 1_000.0,
        failed: outcome == VerificationOutcome::Inconclusive,
        outcome,
        states,
    }
}

/// Aggregate of a set of measurements: average time over non-failed runs
/// and the number of failures (Table 2 reports both).
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregate {
    /// Average elapsed milliseconds over successful runs.
    pub avg_millis: f64,
    /// Number of failed runs.
    pub failures: usize,
    /// Total number of runs.
    pub runs: usize,
}

/// Aggregate measurements.
pub fn aggregate(measurements: &[RunMeasurement]) -> Aggregate {
    let failures = measurements.iter().filter(|m| m.failed).count();
    let ok: Vec<f64> = measurements
        .iter()
        .filter(|m| !m.failed)
        .map(|m| m.millis)
        .collect();
    Aggregate {
        avg_millis: if ok.is_empty() {
            0.0
        } else {
            ok.iter().sum::<f64>() / ok.len() as f64
        },
        failures,
        runs: measurements.len(),
    }
}

/// Mean and 5%-trimmed mean of a list of speedups (Table 3).
pub fn mean_and_trimmed(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let trim = (sorted.len() as f64 * 0.05).floor() as usize;
    let trimmed: &[f64] = &sorted[trim..sorted.len() - trim.min(sorted.len().saturating_sub(trim))];
    let trimmed_mean = if trimmed.is_empty() {
        mean
    } else {
        trimmed.iter().sum::<f64>() / trimmed.len() as f64
    };
    (mean, trimmed_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verifas_workloads::order_fulfillment;

    #[test]
    fn harness_runs_a_single_measurement() {
        let config = HarnessConfig::quick();
        let spec = order_fulfillment();
        let properties = properties_for(&spec, &config);
        assert_eq!(properties.len(), 12);
        let m = run_one(Engine::Verifas, &spec, &properties[0], config.limits, None);
        assert!(m.millis >= 0.0);
    }

    #[test]
    fn aggregate_and_trimmed_mean() {
        let ms = vec![
            RunMeasurement {
                millis: 10.0,
                failed: false,
                outcome: VerificationOutcome::Satisfied,
                states: 1,
            },
            RunMeasurement {
                millis: 30.0,
                failed: false,
                outcome: VerificationOutcome::Violated,
                states: 1,
            },
            RunMeasurement {
                millis: 0.0,
                failed: true,
                outcome: VerificationOutcome::Inconclusive,
                states: 1,
            },
        ];
        let agg = aggregate(&ms);
        assert_eq!(agg.failures, 1);
        assert_eq!(agg.runs, 3);
        assert!((agg.avg_millis - 20.0).abs() < 1e-9);
        let (mean, trimmed) = mean_and_trimmed(&[1.0, 2.0, 3.0, 1000.0]);
        assert!(mean > trimmed || (mean - trimmed).abs() < 1e-9);
    }
}
