//! End-to-end verification benchmarks on benchmark workflows, through the
//! session-oriented engine.

use criterion::{criterion_group, criterion_main, Criterion};
use verifas_core::{Engine, SearchLimits, VerifierOptions};
use verifas_workloads::{
    generate, generate_properties, loan_approval, order_fulfillment, SyntheticParams,
};

fn bench_verification(c: &mut Criterion) {
    let limits = SearchLimits {
        max_states: 20_000,
        max_millis: 10_000,
    };
    let mut group = c.benchmark_group("verify_workflow");
    group.sample_size(10);
    let mut cases = vec![
        ("order_fulfillment", order_fulfillment()),
        ("loan_approval", loan_approval()),
    ];
    if let Some(synthetic) = generate(SyntheticParams::small(), 2017) {
        cases.push(("synthetic_small", synthetic));
    }
    for (name, spec) in cases {
        let properties = generate_properties(&spec, 2017);
        group.bench_function(name, |b| {
            b.iter(|| {
                let options = VerifierOptions {
                    limits,
                    ..VerifierOptions::default()
                };
                let engine = Engine::load_with_options(spec.clone(), options).unwrap();
                for property in properties.iter().take(3) {
                    let _ = engine.check(property).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
