//! End-to-end verification benchmarks on benchmark workflows.

use criterion::{criterion_group, criterion_main, Criterion};
use verifas_core::{SearchLimits, Verifier, VerifierOptions};
use verifas_workloads::{generate, generate_properties, loan_approval, order_fulfillment, SyntheticParams};

fn bench_verification(c: &mut Criterion) {
    let limits = SearchLimits {
        max_states: 20_000,
        max_millis: 10_000,
    };
    let mut group = c.benchmark_group("verify_workflow");
    group.sample_size(10);
    let mut cases = vec![
        ("order_fulfillment", order_fulfillment()),
        ("loan_approval", loan_approval()),
    ];
    if let Some(synthetic) = generate(SyntheticParams::small(), 2017) {
        cases.push(("synthetic_small", synthetic));
    }
    for (name, spec) in cases {
        let properties = generate_properties(&spec, 2017);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut options = VerifierOptions::default();
                options.limits = limits;
                for property in properties.iter().take(3) {
                    let verifier = Verifier::new(&spec, property, options).unwrap();
                    let _ = verifier.verify();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
