//! Micro-benchmarks of the partial-isomorphism-type machinery: building
//! the expression universe, closing types, evaluating conditions and the
//! implication test.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::{BTreeSet, HashSet};
use verifas_core::{eval::compile_condition, eval::eval_extensions, ExprUniverse, Pit, PitBuilder};
use verifas_model::{Condition, DataValue, Term, VarId, VarRef};
use verifas_workloads::order_fulfillment;

fn bench_pit_ops(c: &mut Criterion) {
    let spec = order_fulfillment();
    let constants: BTreeSet<DataValue> = ["Init", "OrderPlaced", "Passed", "Failed", "Yes", "No"]
        .iter()
        .map(|s| DataValue::str(*s))
        .collect();
    let universe = ExprUniverse::build(&spec, spec.root(), &[], &constants);
    c.bench_function("expr_universe_build", |b| {
        b.iter(|| ExprUniverse::build(&spec, spec.root(), &[], &constants))
    });
    let status = universe.var_expr(VarRef::Task(VarId::new(2))).unwrap();
    let init = universe.const_expr(&DataValue::str("Init")).unwrap();
    c.bench_function("pit_close_and_canonicalize", |b| {
        b.iter(|| {
            let mut builder = PitBuilder::new(&universe);
            builder.assert_eq(status, init);
            builder.assert_neq(
                universe.var_expr(VarRef::Task(VarId::new(0))).unwrap(),
                universe.null_expr(),
            );
            builder.finish().unwrap()
        })
    });
    let cond = Condition::or([
        Condition::eq(Term::var(VarId::new(2)), Term::str("Init")),
        Condition::eq(Term::var(VarId::new(2)), Term::str("Passed")),
    ]);
    let compiled = compile_condition(&cond, &universe);
    let none = HashSet::new();
    c.bench_function("eval_extensions", |b| {
        b.iter(|| eval_extensions(&Pit::empty(), &compiled, &universe, &none))
    });
    let mut builder = PitBuilder::new(&universe);
    builder.assert_eq(status, init);
    let strong = builder.finish().unwrap();
    c.bench_function("pit_implies", |b| b.iter(|| strong.implies(&Pit::empty())));
}

criterion_group!(benches, bench_pit_ops);
criterion_main!(benches);
