//! Batched multi-property verification versus N independent one-shot runs.
//!
//! Two comparisons:
//!
//! * `setup/*` — what the session model amortizes: constructing the
//!   spec-side preprocessing (expression universe, compiled symbolic task,
//!   static-analysis graph) for twelve properties, once through twelve
//!   independent `Verifier::new` calls (the pre-0.2 workflow) and once
//!   through a single `Engine` warming its shared cache.  The engine wins
//!   on any machine: it builds once and reuses eleven times.
//!
//! * `multi_property/*` — end-to-end verification of six benchmark
//!   properties of the order-fulfillment workflow: independent one-shot
//!   runs versus `Engine::check_all`, which additionally fans the searches
//!   out across `available_parallelism` threads.  The search phase
//!   dominates end-to-end time, so on a single-core machine the two arms
//!   converge; with N cores `check_all` approaches the slowest single
//!   property instead of the sum.

#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use verifas_core::{Engine, SearchLimits, Verifier, VerifierOptions};
use verifas_workloads::{generate, generate_properties, order_fulfillment, SyntheticParams};

fn options() -> VerifierOptions {
    VerifierOptions {
        limits: SearchLimits {
            max_states: 20_000,
            max_millis: 10_000,
        },
        ..VerifierOptions::default()
    }
}

fn bench_setup_amortization(c: &mut Criterion) {
    // A default-size synthetic spec (75 variables / 75 services) has a
    // preprocessing cost worth amortizing.
    let spec = generate(SyntheticParams::default(), 4).expect("seed 4 generates");
    let properties = generate_properties(&spec, 2017);
    let mut group = c.benchmark_group("setup");
    group.sample_size(20);
    group.bench_function("independent_verifier_new", |b| {
        b.iter(|| {
            for property in &properties {
                let _ = Verifier::new(&spec, property, options()).unwrap();
            }
        })
    });
    group.bench_function("engine_warm", |b| {
        b.iter(|| {
            let engine = Engine::load_with_options(spec.clone(), options()).unwrap();
            for property in &properties {
                engine.warm(property).unwrap();
            }
        })
    });
    group.finish();
}

fn bench_batched_vs_independent(c: &mut Criterion) {
    let spec = order_fulfillment();
    let properties: Vec<_> = generate_properties(&spec, 2017)
        .into_iter()
        .take(6)
        .collect();
    let mut group = c.benchmark_group("multi_property");
    group.sample_size(10);
    group.bench_function("independent_runs", |b| {
        b.iter(|| {
            for property in &properties {
                let _ = Verifier::new(&spec, property, options()).unwrap().verify();
            }
        })
    });
    group.bench_function("engine_check_all", |b| {
        b.iter(|| {
            let engine = Engine::load_with_options(spec.clone(), options()).unwrap();
            for report in engine.check_all(&properties) {
                let _ = report.unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_setup_amortization,
    bench_batched_vs_independent
);
criterion_main!(benches);
