//! Benchmarks of the Karp–Miller search under the different coverage
//! orders (the SP ablation at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use verifas_core::{CoverageKind, KarpMillerSearch, ProductSystem, SearchLimits};
use verifas_workloads::{generate_properties, order_fulfillment};

fn bench_search(c: &mut Criterion) {
    let spec = order_fulfillment();
    let property = &generate_properties(&spec, 2017)[1]; // G phi
    let product = ProductSystem::new(&spec, property, true).unwrap();
    let limits = SearchLimits {
        max_states: 20_000,
        max_millis: 10_000,
    };
    let mut group = c.benchmark_group("karp_miller_search");
    group.sample_size(10);
    for (name, coverage, index) in [
        ("subsumption+index", CoverageKind::Subsumption, true),
        ("subsumption", CoverageKind::Subsumption, false),
        ("standard", CoverageKind::Standard, false),
        ("equality", CoverageKind::Equality, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut search = KarpMillerSearch::new(&product, coverage, index, limits);
                search.run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
