//! # verifas-workloads — the VERIFAS benchmark
//!
//! Workloads and metrics used by the evaluation harness:
//!
//! * [`real`] — hand-written HAS\* workflows modelled on real business
//!   processes, including the paper's order-fulfillment running example,
//! * [`synthetic`] — the Appendix-D random workflow generator,
//! * [`properties`] — LTL-FO property generation from the Table-4
//!   templates and the specification's own conditions,
//! * [`cyclomatic`] — the cyclomatic-complexity metric of Section 4.2,
//! * [`cycles`] — cycle-heavy exhausted-search workloads stressing the
//!   repeated-reachability post-pass,
//! * [`lattice`] — the million-state open/close lattice stressing the
//!   arena state layout of the Karp–Miller search.

pub mod cycles;
pub mod cyclomatic;
pub mod lattice;
pub mod properties;
pub mod real;
pub mod synthetic;

pub use cycles::{
    counter_cycle, cycle_grid, cycle_grid_liveness, cycle_torus, skewed_batch_properties,
    skewed_grid,
};
pub use cyclomatic::cyclomatic_complexity;
pub use lattice::{lattice_false_property, lattice_liveness, open_close_lattice};
pub use properties::{
    candidate_conditions, generate_properties, loan_approval_property, order_fulfillment_property,
};
pub use real::{
    base_workflows, insurance_claim, loan_approval, order_fulfillment, order_fulfillment_buggy,
    real_workflows,
};
pub use synthetic::{generate, generate_set, SyntheticParams};
