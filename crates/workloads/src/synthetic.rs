//! The synthetic workflow generator of Appendix D.
//!
//! Every part of a synthetic specification is generated at random for the
//! given size parameters: a random tree of relations (each with four
//! non-key attributes plus a foreign key to its parent), a random task
//! hierarchy, per-task variables generated uniformly per type, random
//! pre/post conditions (five atoms combined by a random binary tree with
//! `∧` chosen with probability 4/5), and per-service behaviour drawn with
//! probability 1/3 each from {propagate a subset of variables, insert into
//! the artifact relation, retrieve from it}.  Generated specifications
//! whose global state space would be empty because of unsatisfiable
//! conditions are discarded, as in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verifas_model::schema::attr::{data, fk};
use verifas_model::{
    ArtRelId, Condition, DatabaseSchema, HasSpec, InternalService, RelId, SpecBuilder, Task,
    TaskBuilder, TaskId, Term, Update, VarId, VarType,
};

/// Size parameters of a synthetic specification (defaults follow Table 1:
/// 5 relations, 5 tasks, 75 variables, 75 services).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticParams {
    /// Number of database relations.
    pub relations: usize,
    /// Number of tasks.
    pub tasks: usize,
    /// Total number of artifact variables across tasks.
    pub variables: usize,
    /// Total number of internal services across tasks.
    pub services: usize,
    /// Number of atoms per generated condition.
    pub atoms_per_condition: usize,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            relations: 5,
            tasks: 5,
            variables: 75,
            services: 75,
            atoms_per_condition: 5,
        }
    }
}

impl SyntheticParams {
    /// A smaller parameterisation used by quick tests and the `--quick`
    /// harness mode.
    pub fn small() -> Self {
        SyntheticParams {
            relations: 3,
            tasks: 3,
            variables: 18,
            services: 12,
            atoms_per_condition: 3,
        }
    }
}

/// Fixed pool of constants used by generated conditions (Appendix D: "a
/// random constant from a fixed set").
const CONSTANTS: &[&str] = &["c0", "c1", "c2", "c3"];

/// Generate one synthetic specification from a seed.  Returns `None` when
/// the generated specification is rejected (fails validation or has an
/// unsatisfiable global pre-condition), mirroring the paper's filtering.
pub fn generate(params: SyntheticParams, seed: u64) -> Option<HasSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Database schema: a random tree; each relation has 4 data attributes
    // plus a foreign key to its parent (except the root relation).
    let mut db = DatabaseSchema::new();
    let mut rel_ids: Vec<RelId> = Vec::new();
    for i in 0..params.relations {
        let mut attrs = vec![data("a0"), data("a1"), data("a2"), data("a3")];
        if i > 0 {
            let parent = rel_ids[rng.gen_range(0..rel_ids.len())];
            attrs.push(fk("ref", parent));
        }
        rel_ids.push(db.add_relation(format!("R{i}"), attrs).ok()?);
    }

    // Task hierarchy: a random tree; build tasks then wire children.
    let per_task_vars = (params.variables / params.tasks).max(2);
    let per_task_services = (params.services / params.tasks).max(1);
    let mut tasks: Vec<Task> = Vec::new();
    for t in 0..params.tasks {
        let mut tb = TaskBuilder::new(format!("T{t}"));
        // Variables: the same number per type (data, and one per relation).
        let types: Vec<VarType> = std::iter::once(VarType::Data)
            .chain(rel_ids.iter().map(|r| VarType::Id(*r)))
            .collect();
        let per_type = (per_task_vars / types.len()).max(1);
        let mut vars: Vec<(VarId, VarType)> = Vec::new();
        for (ti, typ) in types.iter().enumerate() {
            for k in 0..per_type {
                let v = match typ {
                    VarType::Data => tb.data_var(format!("v{ti}_{k}")),
                    VarType::Id(rel) => tb.id_var(format!("v{ti}_{k}"), *rel),
                };
                vars.push((v, *typ));
            }
        }
        // Input/output variables: 1/10 each (non-root tasks only; the root
        // cannot have them).
        let tenth = (vars.len() / 10).max(1);
        let (inputs, outputs): (Vec<VarId>, Vec<VarId>) = if t == 0 {
            (Vec::new(), Vec::new())
        } else {
            let inputs: Vec<VarId> = vars.iter().take(tenth).map(|(v, _)| *v).collect();
            let outputs: Vec<VarId> = vars
                .iter()
                .skip(tenth)
                .take(tenth)
                .map(|(v, _)| *v)
                .collect();
            (inputs, outputs)
        };
        tb.inputs(inputs.iter().copied());
        tb.outputs(outputs.iter().copied());
        // One artifact relation over a prefix of the variables.
        let pool_vars: Vec<VarId> = vars
            .iter()
            .take(4.min(vars.len()))
            .map(|(v, _)| *v)
            .collect();
        let pool = tb.art_relation_like("POOL", &pool_vars);
        // Services.
        for s in 0..per_task_services {
            let pre = random_condition(&mut rng, &vars, &rel_ids, &db, params.atoms_per_condition);
            let post = random_condition(&mut rng, &vars, &rel_ids, &db, params.atoms_per_condition);
            let svc = random_service_shape(
                &mut rng,
                format!("s{s}"),
                pre,
                post,
                &vars,
                &inputs,
                pool,
                &pool_vars,
            );
            tb.service(svc);
        }
        // Opening / closing guards for non-root tasks are set after wiring
        // (they range over the parent's variables).
        if t > 0 {
            tb.closing_pre(Condition::True);
            tb.opening_pre(Condition::True);
        }
        tasks.push(tb.build());
    }
    // Wire the hierarchy: task i > 0 gets a random parent among 0..i.
    let mut tasks_iter = tasks.into_iter();
    let root = tasks_iter.next()?;
    let mut builder = SpecBuilder::new(format!("synthetic-{seed}"), db, root);
    let mut names = vec!["T0".to_string()];
    for (i, task) in tasks_iter.enumerate() {
        let parent = names[rng.gen_range(0..names.len())].clone();
        let name = task.name.clone();
        // Input/output wiring by name always succeeds because every task
        // declares the same variable names; if the parent lacks a name the
        // child is attached without that mapping by falling back to an
        // explicit empty mapping.
        builder.add_child(&parent, task).ok()?;
        names.push(name);
        let _ = i;
    }
    builder.global_pre(Condition::True);
    let spec = builder.build().ok()?;
    Some(spec)
}

/// Generate a set of specifications (one per seed), discarding rejected
/// ones, until `count` specifications have been produced or the seed space
/// `0..max_attempts` is exhausted.
pub fn generate_set(params: SyntheticParams, count: usize, base_seed: u64) -> Vec<HasSpec> {
    let mut out = Vec::new();
    let mut seed = base_seed;
    let mut attempts = 0;
    while out.len() < count && attempts < count * 50 {
        if let Some(spec) = generate(params, seed) {
            out.push(spec);
        }
        seed = seed.wrapping_add(1);
        attempts += 1;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn random_service_shape(
    rng: &mut StdRng,
    name: String,
    pre: Condition,
    post: Condition,
    vars: &[(VarId, VarType)],
    inputs: &[VarId],
    pool: ArtRelId,
    pool_vars: &[VarId],
) -> InternalService {
    let choice = rng.gen_range(0..3u32);
    match choice {
        // Propagate a random ~1/10 subset of the variables (plus inputs).
        0 => {
            let tenth = (vars.len() / 10).max(1);
            let mut propagated: Vec<VarId> = inputs.to_vec();
            for _ in 0..tenth {
                let (v, _) = vars[rng.gen_range(0..vars.len())];
                if !propagated.contains(&v) {
                    propagated.push(v);
                }
            }
            InternalService {
                name,
                pre,
                post,
                propagated,
                update: None,
            }
        }
        // Insert the fixed tuple of pool variables.
        1 => InternalService {
            name,
            pre,
            post,
            propagated: inputs.to_vec(),
            update: Some(Update::Insert {
                rel: pool,
                vars: pool_vars.to_vec(),
            }),
        },
        // Retrieve a tuple from the pool.
        _ => InternalService {
            name,
            pre,
            post,
            propagated: inputs.to_vec(),
            update: Some(Update::Retrieve {
                rel: pool,
                vars: pool_vars.to_vec(),
            }),
        },
    }
}

/// Generate a random condition: `atoms` atoms (x = y, x = c or R(x̄), each
/// negated with probability 1/2) combined by a random binary tree whose
/// internal nodes are `∧` with probability 4/5 and `∨` with probability
/// 1/5.
fn random_condition(
    rng: &mut StdRng,
    vars: &[(VarId, VarType)],
    rels: &[RelId],
    db: &DatabaseSchema,
    atoms: usize,
) -> Condition {
    let mut leaves: Vec<Condition> = (0..atoms.max(1))
        .map(|_| {
            let atom = random_atom(rng, vars, rels, db);
            if rng.gen_bool(0.5) {
                Condition::not(atom)
            } else {
                atom
            }
        })
        .collect();
    // Combine into a random binary tree.
    while leaves.len() > 1 {
        let i = rng.gen_range(0..leaves.len());
        let a = leaves.swap_remove(i);
        let j = rng.gen_range(0..leaves.len());
        let b = leaves.swap_remove(j);
        let combined = if rng.gen_bool(0.8) {
            Condition::and([a, b])
        } else {
            Condition::or([a, b])
        };
        leaves.push(combined);
    }
    leaves.pop().unwrap_or(Condition::True)
}

fn random_atom(
    rng: &mut StdRng,
    vars: &[(VarId, VarType)],
    rels: &[RelId],
    db: &DatabaseSchema,
) -> Condition {
    let kind = rng.gen_range(0..3u32);
    match kind {
        // x = y between two variables of the same type.
        0 => {
            let (x, tx) = vars[rng.gen_range(0..vars.len())];
            let same: Vec<VarId> = vars
                .iter()
                .filter(|(v, t)| *t == tx && *v != x)
                .map(|(v, _)| *v)
                .collect();
            if let Some(&y) = same.get(
                rng.gen_range(0..same.len().max(1))
                    .min(same.len().saturating_sub(1)),
            ) {
                Condition::eq(Term::var(x), Term::var(y))
            } else {
                Condition::eq(Term::var(x), Term::Null)
            }
        }
        // x = c between a data variable and a constant.
        1 => {
            let data_vars: Vec<VarId> = vars
                .iter()
                .filter(|(_, t)| *t == VarType::Data)
                .map(|(v, _)| *v)
                .collect();
            let c = CONSTANTS[rng.gen_range(0..CONSTANTS.len())];
            match data_vars.first() {
                Some(_) => {
                    let v = data_vars[rng.gen_range(0..data_vars.len())];
                    Condition::eq(Term::var(v), Term::str(c))
                }
                None => Condition::True,
            }
        }
        // R(x, ...) over a relation for which an ID variable exists.
        _ => {
            let rel = rels[rng.gen_range(0..rels.len())];
            let id_vars: Vec<VarId> = vars
                .iter()
                .filter(|(_, t)| *t == VarType::Id(rel))
                .map(|(v, _)| *v)
                .collect();
            if id_vars.is_empty() {
                // Fall back to a comparison atom.
                let (x, _) = vars[rng.gen_range(0..vars.len())];
                return Condition::eq(Term::var(x), Term::Null);
            }
            let id = id_vars[rng.gen_range(0..id_vars.len())];
            let relation = db.relation(rel);
            let args: Vec<Term> = relation
                .attrs
                .iter()
                .map(|attr| match attr.kind {
                    verifas_model::AttrKind::NonKey => {
                        // A data variable or a constant.
                        let data_vars: Vec<VarId> = vars
                            .iter()
                            .filter(|(_, t)| *t == VarType::Data)
                            .map(|(v, _)| *v)
                            .collect();
                        if !data_vars.is_empty() && rng.gen_bool(0.5) {
                            Term::var(data_vars[rng.gen_range(0..data_vars.len())])
                        } else {
                            Term::str(CONSTANTS[rng.gen_range(0..CONSTANTS.len())])
                        }
                    }
                    verifas_model::AttrKind::ForeignKey(target) => {
                        let fk_vars: Vec<VarId> = vars
                            .iter()
                            .filter(|(_, t)| *t == VarType::Id(target))
                            .map(|(v, _)| *v)
                            .collect();
                        if fk_vars.is_empty() {
                            Term::Null
                        } else {
                            Term::var(fk_vars[rng.gen_range(0..fk_vars.len())])
                        }
                    }
                })
                .collect();
            Condition::Rel {
                rel,
                id: Term::var(id),
                args,
            }
        }
    }
}

/// Statistics helpers over a generated set (used by Table 1).
pub fn average_stats(specs: &[HasSpec]) -> (f64, f64, f64, f64) {
    let n = specs.len().max(1) as f64;
    let mut rels = 0.0;
    let mut tasks = 0.0;
    let mut vars = 0.0;
    let mut svcs = 0.0;
    for s in specs {
        let stats = s.stats();
        rels += stats.relations as f64;
        tasks += stats.tasks as f64;
        vars += stats.variables as f64;
        svcs += stats.services as f64;
    }
    (rels / n, tasks / n, vars / n, svcs / n)
}

/// Task hierarchy sanity used in tests.
pub fn hierarchy_depth(spec: &HasSpec) -> usize {
    fn depth(spec: &HasSpec, t: TaskId) -> usize {
        1 + spec
            .children(t)
            .iter()
            .map(|c| depth(spec, *c))
            .max()
            .unwrap_or(0)
    }
    depth(spec, spec.root())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = SyntheticParams::small();
        let a = generate(params, 7);
        let b = generate(params, 7);
        assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn generated_specs_validate_and_have_requested_shape() {
        let params = SyntheticParams::small();
        let specs = generate_set(params, 10, 1);
        assert!(specs.len() >= 5, "most seeds should produce valid specs");
        for spec in &specs {
            spec.validate().unwrap();
            assert_eq!(spec.db.len(), params.relations);
            assert_eq!(spec.tasks.len(), params.tasks);
            assert!(hierarchy_depth(spec) >= 1);
        }
    }

    #[test]
    fn default_parameters_match_table_1() {
        let params = SyntheticParams::default();
        assert_eq!(params.relations, 5);
        assert_eq!(params.tasks, 5);
        assert_eq!(params.variables, 75);
        assert_eq!(params.services, 75);
        let spec = generate(params, 3);
        if let Some(spec) = spec {
            let stats = spec.stats();
            assert_eq!(stats.relations, 5);
            assert_eq!(stats.tasks, 5);
            assert!(stats.services >= 70);
        }
    }

    #[test]
    fn average_stats_are_computed() {
        let specs = generate_set(SyntheticParams::small(), 5, 11);
        let (r, t, v, s) = average_stats(&specs);
        assert!(r > 0.0 && t > 0.0 && v > 0.0 && s > 0.0);
    }
}
