//! The open/close lattice: a million-state coverability workload for the
//! arena state layout.
//!
//! The historical scenarios top out around a few thousand symbolic states
//! — big enough to exercise correctness, far too small to expose the cost
//! of per-state heap allocation or of linear coverage scans.
//! [`open_close_lattice`] is built to blow the state count up while
//! keeping every *per-state* ingredient tiny:
//!
//! * the root task has a single `tick` variable cycling over `ticks`
//!   pinned string values (an internal service per step, applicable only
//!   while no child is active);
//! * `children` trivial child tasks open and close freely (their opening
//!   guards are `true`), toggling bits of the parent's child-activity
//!   mask.
//!
//! Reachable root states are exactly the pairs (tick value or null, child
//! mask): `(ticks + 1) · 2^children` states — with the default
//! 16 × 16 parameters, 1,114,112 of them — spread over `2^children`
//! *discrete groups* of `ticks + 1` states each.  Distinct pinned tick
//! constants mean no state's type implies another's, so nothing is ever
//! pruned and the search must materialise the whole lattice; only ~
//! `ticks + 1` distinct partial isomorphism types and one (empty) counter
//! vector ever exist, so the deduplicating arenas collapse per-state
//! storage to one dense row.  Every expansion re-derives ~`children + 1`
//! already-known successors, so coverage-check throughput — a group scan
//! of ≤ `ticks + 1` candidates in the arena layout, a scan of the entire
//! node table in the pre-overhaul reference layout — dominates the run,
//! which is precisely what the `state_layout` benchmark wants to measure.

use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
use verifas_model::schema::attr::data;
use verifas_model::{Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, Term, VarId};

/// The `i`-th tick value.
fn tick_value(i: usize) -> String {
    format!("t{i}")
}

/// Build the `(ticks + 1) · 2^children`-state open/close lattice.
///
/// `ticks` must be at least 2 (the tick cycle) and `children` between 1
/// and 60 (the child-activity mask is a `u64`, and the top bits are left
/// clear for headroom).
pub fn open_close_lattice(ticks: usize, children: usize) -> HasSpec {
    assert!(ticks >= 2, "a tick cycle needs at least two values");
    assert!(
        (1..=60).contains(&children),
        "child masks must fit in a u64"
    );
    let mut db = DatabaseSchema::new();
    db.add_relation("R", vec![data("a")]).unwrap();
    let mut root = TaskBuilder::new("Lattice");
    let tick = root.data_var("tick");
    root.service_parts(
        "enter",
        Condition::eq(Term::var(tick), Term::Null),
        Condition::eq(Term::var(tick), Term::str(tick_value(0))),
        vec![],
        None,
    );
    for i in 0..ticks {
        root.service_parts(
            format!("tick_{i}"),
            Condition::eq(Term::var(tick), Term::str(tick_value(i))),
            Condition::eq(Term::var(tick), Term::str(tick_value((i + 1) % ticks))),
            vec![],
            None,
        );
    }
    let mut b = SpecBuilder::new(
        format!("open-close-lattice-{ticks}x{children}"),
        db,
        root.build(),
    );
    for c in 0..children {
        // A child's opening guard defaults to `true`, so each gate toggles
        // freely; no outputs means closing returns nothing and the
        // parent's tick constraint survives every close.
        let mut gate = TaskBuilder::new(format!("Gate{c}"));
        let step = gate.data_var("step");
        gate.closing_pre(Condition::eq(Term::var(step), Term::str("Done")));
        gate.service_parts(
            "work",
            Condition::eq(Term::var(step), Term::Null),
            Condition::eq(Term::var(step), Term::str("Done")),
            vec![],
            None,
        );
        b.add_child("Lattice", gate.build()).unwrap();
    }
    b.global_pre(Condition::eq(Term::var(tick), Term::Null));
    b.build().unwrap()
}

/// The property `false` over a lattice spec.  Driving a raw
/// product-system search with it (as the `state_layout` benchmark and the
/// candidate-path differential tests do)
/// exhausts exactly the `(ticks + 1) · 2^children` reachable states — a
/// pure measure of search (and state storage) throughput.  Note the
/// full *verifier* pipeline trivially refutes `false` instead; use
/// [`lattice_liveness`] for engine-level flows.
pub fn lattice_false_property(spec: &HasSpec) -> LtlFoProperty {
    LtlFoProperty::new("false-exhaust", spec.root(), vec![], Ltl::False, vec![])
}

/// The liveness property `F (tick = "goal")` over a lattice spec: no run
/// ever reaches `"goal"`, so the engine must exhaust the lattice (up to
/// its limits) and run the repeated-reachability post-pass to return the
/// Violated-by-an-infinite-run verdict — the engine-level counterpart of
/// [`lattice_false_property`].
pub fn lattice_liveness(spec: &HasSpec) -> LtlFoProperty {
    LtlFoProperty::new(
        "eventually-goal",
        spec.root(),
        vec![],
        Ltl::eventually(Ltl::prop(0)),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(0)),
            Term::str("goal"),
        ))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_spec_builds_with_expected_shape() {
        let spec = open_close_lattice(4, 3);
        assert_eq!(spec.name, "open-close-lattice-4x3");
        // enter + one step per tick value.
        assert_eq!(spec.task(spec.root()).services.len(), 5);
        // Three gates hang off the root.
        assert_eq!(spec.task(spec.root()).children.len(), 3);
        let property = lattice_false_property(&spec);
        assert_eq!(property.name, "false-exhaust");
    }

    #[test]
    #[should_panic(expected = "tick cycle")]
    fn rejects_degenerate_tick_cycles() {
        open_close_lattice(1, 2);
    }
}
