//! Cycle-heavy exhausted-search workloads for the repeated-reachability
//! post-pass.
//!
//! The benchmark scenarios of `ci_bench` historically measured the
//! Karp–Miller search itself; none of them stressed the cycle-detection
//! pass that runs *after* an exhausted search.  [`cycle_torus`] fills
//! that gap: `dims` artifact variables each cycle independently over `k`
//! string values, so the reachable symbolic state space is a `k^dims`
//! torus of states that the search exhausts quickly — and every one of
//! them stays active (no state's type implies another's, so nothing is
//! pruned) and lies on abstract cycles.  Checking the liveness property
//! of [`cycle_grid_liveness`] (`F (v0 = "goal")`, where `"goal"` is never
//! reached) forces the repeated-reachability analysis to build the full
//! abstract transition graph over those active states, which is exactly
//! the regime where the pre-index O(active²) edge construction dominated
//! the whole verification.  `ci_bench` uses the two-dimensional
//! [`cycle_grid`] (wide value cycles keep the signature posting lists
//! short, so the index filter shines).

use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
use verifas_model::schema::attr::data;
use verifas_model::{Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, Term, VarId};

/// The `i`-th value of a cycling variable.
fn value(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// A `k^dims` torus of symbolic states: `dims` variables each cycle over
/// `k` values through per-step services, so the exhausted search leaves
/// ~`k^dims + 1` active states that are all on cycles of the abstract
/// transition graph.  `dims` and `k` must both be at least 2.
pub fn cycle_torus(dims: usize, k: usize) -> HasSpec {
    assert!(dims >= 2, "a torus needs at least two dimensions");
    assert!(k >= 2, "a cycle needs at least two values");
    let mut db = DatabaseSchema::new();
    db.add_relation("R", vec![data("a")]).unwrap();
    let mut root = TaskBuilder::new("Torus");
    let vars: Vec<_> = (0..dims).map(|d| root.data_var(format!("v{d}"))).collect();
    root.service_parts(
        "enter",
        Condition::and(
            vars.iter()
                .map(|&v| Condition::eq(Term::var(v), Term::Null)),
        ),
        Condition::and(
            vars.iter()
                .enumerate()
                .map(|(d, &v)| Condition::eq(Term::var(v), Term::str(value(&format!("v{d}_"), 0)))),
        ),
        vec![],
        None,
    );
    for (d, &var) in vars.iter().enumerate() {
        let prefix = format!("v{d}_");
        let others: Vec<_> = vars.iter().copied().filter(|&other| other != var).collect();
        for i in 0..k {
            root.service_parts(
                format!("v{d}_step_{i}"),
                Condition::eq(Term::var(var), Term::str(value(&prefix, i))),
                Condition::eq(Term::var(var), Term::str(value(&prefix, (i + 1) % k))),
                // The stepped variable changes; the others keep their
                // values, which is what makes the state space the full
                // torus.
                others.clone(),
                None,
            );
        }
    }
    let mut b = SpecBuilder::new(format!("cycle-torus-{dims}x{k}"), db, root.build());
    b.global_pre(Condition::and(
        vars.iter()
            .map(|&v| Condition::eq(Term::var(v), Term::Null)),
    ));
    b.build().unwrap()
}

/// The two-dimensional [`cycle_torus`]: a `k × k` grid of states.
pub fn cycle_grid(k: usize) -> HasSpec {
    cycle_torus(2, k)
}

/// The liveness property `F (x = "goal")` over a [`cycle_grid`] spec.
///
/// No run ever reaches `"goal"`, so every infinite run violates the
/// property: the violation automaton accepts on every reachable state and
/// the repeated-reachability analysis must find an accepting cycle in the
/// full abstract transition graph (verdict: Violated, by an infinite run).
pub fn cycle_grid_liveness(spec: &HasSpec) -> LtlFoProperty {
    LtlFoProperty::new(
        "eventually-goal",
        spec.root(),
        vec![],
        Ltl::eventually(Ltl::prop(0)),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(0)),
            Term::str("goal"),
        ))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spec_builds_and_scales_quadratically() {
        let spec = cycle_grid(4);
        assert_eq!(spec.name, "cycle-torus-2x4");
        // enter + k steps per variable.
        assert_eq!(spec.task(spec.root()).services.len(), 9);
        let property = cycle_grid_liveness(&spec);
        assert_eq!(property.name, "eventually-goal");
    }
}
