//! Cycle-heavy exhausted-search workloads for the repeated-reachability
//! post-pass.
//!
//! The benchmark scenarios of `ci_bench` historically measured the
//! Karp–Miller search itself; none of them stressed the cycle-detection
//! pass that runs *after* an exhausted search.  [`cycle_torus`] fills
//! that gap: `dims` artifact variables each cycle independently over `k`
//! string values, so the reachable symbolic state space is a `k^dims`
//! torus of states that the search exhausts quickly — and every one of
//! them stays active (no state's type implies another's, so nothing is
//! pruned) and lies on abstract cycles.  Checking the liveness property
//! of [`cycle_grid_liveness`] (`F (v0 = "goal")`, where `"goal"` is never
//! reached) forces the repeated-reachability analysis to build the full
//! abstract transition graph over those active states, which is exactly
//! the regime where the pre-index O(active²) edge construction dominated
//! the whole verification.  `ci_bench` uses the two-dimensional
//! [`cycle_grid`] (wide value cycles keep the signature posting lists
//! short, so the index filter shines).

use verifas_ltl::{Ltl, LtlFoProperty, PropAtom};
use verifas_model::schema::attr::data;
use verifas_model::{
    Condition, DatabaseSchema, HasSpec, SpecBuilder, TaskBuilder, Term, Update, VarId,
};

/// The `i`-th value of a cycling variable.
fn value(prefix: &str, i: usize) -> String {
    format!("{prefix}{i}")
}

/// A `k^dims` torus of symbolic states: `dims` variables each cycle over
/// `k` values through per-step services, so the exhausted search leaves
/// ~`k^dims + 1` active states that are all on cycles of the abstract
/// transition graph.  `dims` and `k` must both be at least 2.
pub fn cycle_torus(dims: usize, k: usize) -> HasSpec {
    assert!(dims >= 2, "a torus needs at least two dimensions");
    assert!(k >= 2, "a cycle needs at least two values");
    let mut db = DatabaseSchema::new();
    db.add_relation("R", vec![data("a")]).unwrap();
    let mut root = TaskBuilder::new("Torus");
    let vars: Vec<_> = (0..dims).map(|d| root.data_var(format!("v{d}"))).collect();
    root.service_parts(
        "enter",
        Condition::and(
            vars.iter()
                .map(|&v| Condition::eq(Term::var(v), Term::Null)),
        ),
        Condition::and(
            vars.iter()
                .enumerate()
                .map(|(d, &v)| Condition::eq(Term::var(v), Term::str(value(&format!("v{d}_"), 0)))),
        ),
        vec![],
        None,
    );
    for (d, &var) in vars.iter().enumerate() {
        let prefix = format!("v{d}_");
        let others: Vec<_> = vars.iter().copied().filter(|&other| other != var).collect();
        for i in 0..k {
            root.service_parts(
                format!("v{d}_step_{i}"),
                Condition::eq(Term::var(var), Term::str(value(&prefix, i))),
                Condition::eq(Term::var(var), Term::str(value(&prefix, (i + 1) % k))),
                // The stepped variable changes; the others keep their
                // values, which is what makes the state space the full
                // torus.
                others.clone(),
                None,
            );
        }
    }
    let mut b = SpecBuilder::new(format!("cycle-torus-{dims}x{k}"), db, root.build());
    b.global_pre(Condition::and(
        vars.iter()
            .map(|&v| Condition::eq(Term::var(v), Term::Null)),
    ));
    b.build().unwrap()
}

/// The two-dimensional [`cycle_torus`]: a `k × k` grid of states.
pub fn cycle_grid(k: usize) -> HasSpec {
    cycle_torus(2, k)
}

/// A counter-heavy cycling workload: `status` cycles over `k` string
/// values forever, and at any point of the first lap a one-shot `stash`
/// service (guarded by the `marked` flag) inserts the *current* `status`
/// into an artifact relation — so the exhausted search's active set holds
/// states carrying a bounded (non-ω) counter of `k` *distinct stored
/// tuple types*, one per possible stash point, all of them on cycles of
/// the abstract transition graph.
///
/// This is the regime the repository's repeated-reachability regression
/// suite uses to pin the soundness of the `StateIndex` signature
/// (pit-`=`-edges only): stored-type and `≠` pit edges are exactly what
/// the signature must *not* include (they could filter out true
/// coverers), and a workload without stored types cannot catch that
/// class of bug.  Verifying the never-reached liveness goal of
/// [`cycle_grid_liveness`] against this spec drives the full
/// cycle-detection post-pass over those counter-carrying states, and the
/// result must be bit-identical with the index on or off.
pub fn counter_cycle(k: usize) -> HasSpec {
    assert!(k >= 2, "a cycle needs at least two values");
    let mut db = DatabaseSchema::new();
    db.add_relation("R", vec![data("a")]).unwrap();
    let mut root = TaskBuilder::new("CounterCycle");
    let status = root.data_var("status");
    let marked = root.data_var("marked");
    let pool = root.art_relation_like("POOL", &[status]);
    root.service_parts(
        "enter",
        Condition::eq(Term::var(status), Term::Null),
        Condition::eq(Term::var(status), Term::str(value("s", 0))),
        vec![marked],
        None,
    );
    for i in 0..k {
        root.service_parts(
            format!("step_{i}"),
            Condition::eq(Term::var(status), Term::str(value("s", i))),
            Condition::eq(Term::var(status), Term::str(value("s", (i + 1) % k))),
            vec![marked],
            None,
        );
    }
    // One-shot (guarded by `marked`): stores the value `status` holds at
    // the stash point, so the reachable states carry `k` distinct stored
    // tuple types (but each counter stays at 1 — no ω, so the verdict
    // must come from the cycle-detection post-pass, not the
    // accelerated-counter shortcut).  One service per stash point: a
    // service with an artifact-relation update must propagate exactly the
    // task's input variables (Definition 10) — here none — so `status`
    // is re-pinned by the post-condition instead of being propagated.
    for i in 0..k {
        root.service_parts(
            format!("stash_{i}"),
            Condition::and([
                Condition::eq(Term::var(marked), Term::Null),
                Condition::eq(Term::var(status), Term::str(value("s", i))),
            ]),
            Condition::and([
                Condition::eq(Term::var(marked), Term::str("yes")),
                Condition::eq(Term::var(status), Term::str(value("s", i))),
            ]),
            vec![],
            Some(Update::Insert {
                rel: pool,
                vars: vec![status],
            }),
        );
    }
    let mut b = SpecBuilder::new(format!("counter-cycle-{k}"), db, root.build());
    b.global_pre(Condition::and([
        Condition::eq(Term::var(status), Term::Null),
        Condition::eq(Term::var(marked), Term::Null),
    ]));
    b.build().unwrap()
}

/// A skewed-batch workload: the root task is the `k × k` grid of
/// [`cycle_grid`] (its liveness check exhausts the whole grid and runs
/// the full repeated-reachability post-pass — the *heavy* end of a
/// batch), plus a trivial `Chore` child task whose local runs close after
/// two steps (properties on it verify in a handful of states — the
/// *light* end).  [`skewed_batch_properties`] builds the matching
/// one-heavy-plus-many-light property batch, which is the workload shape
/// the sharded batch scheduler exists for: under a flat pool the heavy
/// straggler holds one core while the rest of the machine idles.
pub fn skewed_grid(k: usize) -> HasSpec {
    let mut db = DatabaseSchema::new();
    db.add_relation("R", vec![data("a")]).unwrap();
    let mut root = TaskBuilder::new("Grid");
    let vars: Vec<_> = (0..2).map(|d| root.data_var(format!("v{d}"))).collect();
    root.service_parts(
        "enter",
        Condition::and(
            vars.iter()
                .map(|&v| Condition::eq(Term::var(v), Term::Null)),
        ),
        Condition::and(
            vars.iter()
                .enumerate()
                .map(|(d, &v)| Condition::eq(Term::var(v), Term::str(value(&format!("v{d}_"), 0)))),
        ),
        vec![],
        None,
    );
    for (d, &var) in vars.iter().enumerate() {
        let prefix = format!("v{d}_");
        let others: Vec<_> = vars.iter().copied().filter(|&other| other != var).collect();
        for i in 0..k {
            root.service_parts(
                format!("v{d}_step_{i}"),
                Condition::eq(Term::var(var), Term::str(value(&prefix, i))),
                Condition::eq(Term::var(var), Term::str(value(&prefix, (i + 1) % k))),
                others.clone(),
                None,
            );
        }
    }
    let mut b = SpecBuilder::new(format!("skewed-grid-{k}"), db, root.build());
    let mut chore = TaskBuilder::new("Chore");
    let step = chore.data_var("step");
    chore.closing_pre(Condition::eq(Term::var(step), Term::str("Done")));
    chore.service_parts(
        "work",
        Condition::eq(Term::var(step), Term::Null),
        Condition::eq(Term::var(step), Term::str("Done")),
        vec![],
        None,
    );
    b.add_child("Grid", chore.build()).unwrap();
    b.global_pre(Condition::and(
        vars.iter()
            .map(|&v| Condition::eq(Term::var(v), Term::Null)),
    ));
    b.build().unwrap()
}

/// The one-heavy-plus-`lights`-light property batch over a
/// [`skewed_grid`] spec: property 0 is the grid-exhausting
/// [`cycle_grid_liveness`] check of the root task, the rest are
/// finitely-violated safety checks of the `Chore` child task (each
/// verified in a handful of states).
pub fn skewed_batch_properties(spec: &HasSpec, lights: usize) -> Vec<LtlFoProperty> {
    let (chore, _) = spec
        .task_by_name("Chore")
        .expect("skewed_grid has a Chore child");
    let mut out = vec![cycle_grid_liveness(spec)];
    for i in 0..lights {
        out.push(LtlFoProperty::new(
            format!("chore-finishes-{i}"),
            chore,
            vec![],
            Ltl::globally(Ltl::not(Ltl::prop(0))),
            vec![PropAtom::Condition(Condition::eq(
                Term::var(VarId::new(0)),
                Term::str("Done"),
            ))],
        ));
    }
    out
}

/// The liveness property `F (x = "goal")` over a [`cycle_grid`] spec
/// (or any spec, like [`counter_cycle`], whose first data variable cycles
/// and never reaches `"goal"`).
///
/// No run ever reaches `"goal"`, so every infinite run violates the
/// property: the violation automaton accepts on every reachable state and
/// the repeated-reachability analysis must find an accepting cycle in the
/// full abstract transition graph (verdict: Violated, by an infinite run).
pub fn cycle_grid_liveness(spec: &HasSpec) -> LtlFoProperty {
    LtlFoProperty::new(
        "eventually-goal",
        spec.root(),
        vec![],
        Ltl::eventually(Ltl::prop(0)),
        vec![PropAtom::Condition(Condition::eq(
            Term::var(VarId::new(0)),
            Term::str("goal"),
        ))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spec_builds_and_scales_quadratically() {
        let spec = cycle_grid(4);
        assert_eq!(spec.name, "cycle-torus-2x4");
        // enter + k steps per variable.
        assert_eq!(spec.task(spec.root()).services.len(), 9);
        let property = cycle_grid_liveness(&spec);
        assert_eq!(property.name, "eventually-goal");
    }
}
