//! The "real" workflow set: HAS\* specifications modelled on the kinds of
//! business processes the paper rewrote from bpmn.org (Section 4.1).
//!
//! The flagship specification is the order-fulfillment workflow of the
//! paper's running example (Appendix B), reproduced faithfully: a
//! `ProcessOrders` root coordinating `TakeOrder`, `CheckCredit`, `Restock`
//! and `ShipItem` stages over a `CUSTOMERS`/`ITEMS`/`CREDIT_RECORD`
//! database and an `ORDERS` artifact relation.  Seven further hand-written
//! workflows cover the same structural range (hierarchies of depth 2,
//! artifact relations used as work pools, foreign-key navigation in
//! conditions).  [`real_workflows`] expands the eight base processes into a
//! set of 32 specifications through systematic variants, mirroring the
//! size of the paper's real set (see `DESIGN.md`, substitution table).

use verifas_model::schema::attr::{data, fk};
use verifas_model::{
    Condition, DatabaseSchema, HasSpec, InternalService, SpecBuilder, Task, TaskBuilder, Term,
    Update,
};

/// The order fulfillment workflow of the paper's running example
/// (Appendix B).
pub fn order_fulfillment() -> HasSpec {
    let mut db = DatabaseSchema::new();
    let credit = db
        .add_relation("CREDIT_RECORD", vec![data("status")])
        .unwrap();
    let customers = db
        .add_relation(
            "CUSTOMERS",
            vec![data("name"), data("address"), fk("record", credit)],
        )
        .unwrap();
    let items = db
        .add_relation("ITEMS", vec![data("item_name"), data("price")])
        .unwrap();

    // Root task: ProcessOrders.
    let mut root = TaskBuilder::new("ProcessOrders");
    let cust_id = root.id_var("cust_id", customers);
    let item_id = root.id_var("item_id", items);
    let status = root.data_var("status");
    let instock = root.data_var("instock");
    let orders = root.art_relation_like("ORDERS", &[cust_id, item_id, status, instock]);
    root.service_parts(
        "Initialize",
        Condition::and([
            Condition::eq(Term::var(status), Term::Null),
            Condition::eq(Term::var(cust_id), Term::Null),
        ]),
        Condition::and([
            Condition::eq(Term::var(cust_id), Term::Null),
            Condition::eq(Term::var(item_id), Term::Null),
            Condition::eq(Term::var(status), Term::str("Init")),
        ]),
        vec![],
        None,
    );
    root.service_parts(
        "StoreOrder",
        Condition::and([
            Condition::neq(Term::var(cust_id), Term::Null),
            Condition::neq(Term::var(item_id), Term::Null),
            Condition::neq(Term::var(status), Term::str("Failed")),
        ]),
        Condition::and([
            Condition::eq(Term::var(cust_id), Term::Null),
            Condition::eq(Term::var(item_id), Term::Null),
            Condition::eq(Term::var(status), Term::str("Init")),
        ]),
        vec![],
        Some(Update::Insert {
            rel: orders,
            vars: vec![cust_id, item_id, status, instock],
        }),
    );
    root.service_parts(
        "RetrieveOrder",
        Condition::and([
            Condition::eq(Term::var(cust_id), Term::Null),
            Condition::eq(Term::var(item_id), Term::Null),
        ]),
        Condition::True,
        vec![],
        Some(Update::Retrieve {
            rel: orders,
            vars: vec![cust_id, item_id, status, instock],
        }),
    );
    let mut builder = SpecBuilder::new("order-fulfillment", db, root.build());
    builder.global_pre(Condition::and([
        Condition::eq(Term::var(cust_id), Term::Null),
        Condition::eq(Term::var(item_id), Term::Null),
        Condition::eq(Term::var(status), Term::Null),
        Condition::eq(Term::var(instock), Term::Null),
    ]));

    // TakeOrder: the customer enters the order; the supplier sets instock.
    let mut take = TaskBuilder::new("TakeOrder");
    let t_cust = take.id_var("cust_id", customers);
    let t_item = take.id_var("item_id", items);
    let t_status = take.data_var("status");
    let t_instock = take.data_var("instock");
    let t_name = take.data_var("scratch_name");
    let t_addr = take.data_var("scratch_addr");
    let t_rec = take.id_var("scratch_record", credit);
    let t_iname = take.data_var("scratch_item_name");
    let t_price = take.data_var("scratch_price");
    take.outputs([t_cust, t_item, t_status, t_instock]);
    take.opening_pre(Condition::eq(Term::var(status), Term::str("Init")));
    take.closing_pre(Condition::and([
        Condition::neq(Term::var(t_cust), Term::Null),
        Condition::neq(Term::var(t_item), Term::Null),
    ]));
    take.service_parts(
        "EnterCustomer",
        Condition::True,
        Condition::and([
            Condition::Rel {
                rel: customers,
                id: Term::var(t_cust),
                args: vec![Term::var(t_name), Term::var(t_addr), Term::var(t_rec)],
            },
            Condition::implies(
                Condition::and([
                    Condition::neq(Term::var(t_cust), Term::Null),
                    Condition::neq(Term::var(t_item), Term::Null),
                ]),
                Condition::eq(Term::var(t_status), Term::str("OrderPlaced")),
            ),
            Condition::implies(
                Condition::or([
                    Condition::eq(Term::var(t_cust), Term::Null),
                    Condition::eq(Term::var(t_item), Term::Null),
                ]),
                Condition::eq(Term::var(t_status), Term::Null),
            ),
        ]),
        vec![t_instock, t_item],
        None,
    );
    take.service_parts(
        "EnterItem",
        Condition::True,
        Condition::and([
            Condition::Rel {
                rel: items,
                id: Term::var(t_item),
                args: vec![Term::var(t_iname), Term::var(t_price)],
            },
            Condition::or([
                Condition::eq(Term::var(t_instock), Term::str("Yes")),
                Condition::eq(Term::var(t_instock), Term::str("No")),
            ]),
            Condition::implies(
                Condition::and([
                    Condition::neq(Term::var(t_cust), Term::Null),
                    Condition::neq(Term::var(t_item), Term::Null),
                ]),
                Condition::eq(Term::var(t_status), Term::str("OrderPlaced")),
            ),
        ]),
        vec![t_cust],
        None,
    );
    builder.add_child("ProcessOrders", take.build()).unwrap();

    // CheckCredit: checks the customer's credit record via the foreign key.
    let mut check = TaskBuilder::new("CheckCredit");
    let c_cust = check.id_var("cust_id", customers);
    let c_record = check.id_var("record", credit);
    let c_status = check.data_var("status");
    let c_name = check.data_var("scratch_name");
    let c_addr = check.data_var("scratch_addr");
    check.inputs([c_cust]);
    check.outputs([c_status]);
    check.opening_pre(Condition::eq(Term::var(status), Term::str("OrderPlaced")));
    check.closing_pre(Condition::or([
        Condition::eq(Term::var(c_status), Term::str("Passed")),
        Condition::eq(Term::var(c_status), Term::str("Failed")),
    ]));
    check.service_parts(
        "Check",
        Condition::True,
        Condition::and([
            Condition::Rel {
                rel: customers,
                id: Term::var(c_cust),
                args: vec![Term::var(c_name), Term::var(c_addr), Term::var(c_record)],
            },
            Condition::implies(
                Condition::Rel {
                    rel: credit,
                    id: Term::var(c_record),
                    args: vec![Term::str("Good")],
                },
                Condition::eq(Term::var(c_status), Term::str("Passed")),
            ),
            Condition::implies(
                Condition::not(Condition::Rel {
                    rel: credit,
                    id: Term::var(c_record),
                    args: vec![Term::str("Good")],
                }),
                Condition::eq(Term::var(c_status), Term::str("Failed")),
            ),
        ]),
        vec![c_cust],
        None,
    );
    builder.add_child("ProcessOrders", check.build()).unwrap();

    // Restock: procures an out-of-stock item.
    let mut restock = TaskBuilder::new("Restock");
    let r_item = restock.id_var("item_id", items);
    let r_instock = restock.data_var("instock");
    restock.inputs([r_item]);
    restock.outputs([r_instock]);
    restock.opening_pre(Condition::eq(Term::var(instock), Term::str("No")));
    restock.closing_pre(Condition::eq(Term::var(r_instock), Term::str("Yes")));
    restock.service_parts(
        "Procure",
        Condition::True,
        Condition::or([
            Condition::eq(Term::var(r_instock), Term::str("Yes")),
            Condition::eq(Term::var(r_instock), Term::str("No")),
        ]),
        vec![r_item],
        None,
    );
    builder.add_child("ProcessOrders", restock.build()).unwrap();

    // ShipItem: ships once credit passed and the item is in stock.
    let mut ship = TaskBuilder::new("ShipItem");
    let s_item = ship.id_var("item_id", items);
    let s_status = ship.data_var("status");
    ship.inputs([s_item]);
    ship.outputs([s_status]);
    ship.opening_pre(Condition::and([
        Condition::eq(Term::var(status), Term::str("Passed")),
        Condition::eq(Term::var(instock), Term::str("Yes")),
    ]));
    ship.closing_pre(Condition::or([
        Condition::eq(Term::var(s_status), Term::str("Shipped")),
        Condition::eq(Term::var(s_status), Term::str("Failed")),
    ]));
    ship.service_parts(
        "Ship",
        Condition::True,
        Condition::or([
            Condition::eq(Term::var(s_status), Term::str("Shipped")),
            Condition::eq(Term::var(s_status), Term::str("Failed")),
        ]),
        vec![s_item],
        None,
    );
    builder.add_child("ProcessOrders", ship.build()).unwrap();

    builder
        .build()
        .expect("order fulfillment specification is well-formed")
}

/// A buggy variant of [`order_fulfillment`] in which `ShipItem` can open
/// without checking `instock`, violating property (†) of the paper — used
/// by tests and the counterexample example.
pub fn order_fulfillment_buggy() -> HasSpec {
    let mut spec = order_fulfillment();
    let (ship_id, _) = spec.task_by_name("ShipItem").unwrap();
    let parent_status = spec
        .task_by_name("ProcessOrders")
        .unwrap()
        .1
        .var_by_name("status")
        .unwrap()
        .0;
    // Drop the instock = "Yes" conjunct from the opening guard.
    spec.tasks[ship_id.index()].opening.pre =
        Condition::eq(Term::var(parent_status), Term::str("Passed"));
    spec.name = "order-fulfillment-buggy".into();
    spec
}

/// A two-stage loan approval process: applications are pooled, assessed by
/// a `Review` subtask against the applicant's credit file, then archived.
pub fn loan_approval() -> HasSpec {
    let mut db = DatabaseSchema::new();
    let bureau = db.add_relation("BUREAU", vec![data("rating")]).unwrap();
    let applicants = db
        .add_relation("APPLICANTS", vec![data("name"), fk("file", bureau)])
        .unwrap();
    let mut root = TaskBuilder::new("LoanDesk");
    let applicant = root.id_var("applicant", applicants);
    let decision = root.data_var("decision");
    let stage = root.data_var("stage");
    let pool = root.art_relation_like("APPLICATIONS", &[applicant, stage]);
    root.service_parts(
        "Receive",
        Condition::eq(Term::var(applicant), Term::Null),
        Condition::and([
            Condition::neq(Term::var(applicant), Term::Null),
            Condition::eq(Term::var(stage), Term::str("Received")),
            Condition::eq(Term::var(decision), Term::Null),
        ]),
        vec![],
        None,
    );
    root.service_parts(
        "Queue",
        Condition::eq(Term::var(stage), Term::str("Received")),
        Condition::and([
            Condition::eq(Term::var(applicant), Term::Null),
            Condition::eq(Term::var(stage), Term::Null),
        ]),
        vec![],
        Some(Update::Insert {
            rel: pool,
            vars: vec![applicant, stage],
        }),
    );
    root.service_parts(
        "Dequeue",
        Condition::eq(Term::var(applicant), Term::Null),
        Condition::True,
        vec![],
        Some(Update::Retrieve {
            rel: pool,
            vars: vec![applicant, stage],
        }),
    );
    root.service_parts(
        "Archive",
        Condition::or([
            Condition::eq(Term::var(decision), Term::str("Approved")),
            Condition::eq(Term::var(decision), Term::str("Rejected")),
        ]),
        Condition::and([
            Condition::eq(Term::var(applicant), Term::Null),
            Condition::eq(Term::var(decision), Term::Null),
            Condition::eq(Term::var(stage), Term::Null),
        ]),
        vec![],
        None,
    );
    let mut builder = SpecBuilder::new("loan-approval", db, root.build());
    builder.global_pre(Condition::and([
        Condition::eq(Term::var(applicant), Term::Null),
        Condition::eq(Term::var(decision), Term::Null),
        Condition::eq(Term::var(stage), Term::Null),
    ]));
    let mut review = TaskBuilder::new("Review");
    let r_app = review.id_var("applicant", applicants);
    let r_file = review.id_var("file", bureau);
    let r_name = review.data_var("scratch_name");
    let r_decision = review.data_var("decision");
    review.inputs([r_app]);
    review.outputs([r_decision]);
    review.opening_pre(Condition::and([
        Condition::neq(Term::var(applicant), Term::Null),
        Condition::eq(Term::var(decision), Term::Null),
    ]));
    review.closing_pre(Condition::neq(Term::var(r_decision), Term::Null));
    review.service_parts(
        "Assess",
        Condition::True,
        Condition::and([
            Condition::Rel {
                rel: applicants,
                id: Term::var(r_app),
                args: vec![Term::var(r_name), Term::var(r_file)],
            },
            Condition::implies(
                Condition::Rel {
                    rel: bureau,
                    id: Term::var(r_file),
                    args: vec![Term::str("Prime")],
                },
                Condition::eq(Term::var(r_decision), Term::str("Approved")),
            ),
            Condition::implies(
                Condition::not(Condition::Rel {
                    rel: bureau,
                    id: Term::var(r_file),
                    args: vec![Term::str("Prime")],
                }),
                Condition::or([
                    Condition::eq(Term::var(r_decision), Term::str("Rejected")),
                    Condition::eq(Term::var(r_decision), Term::str("Approved")),
                ]),
            ),
        ]),
        vec![r_app],
        None,
    );
    builder.add_child("LoanDesk", review.build()).unwrap();
    builder
        .build()
        .expect("loan approval specification is well-formed")
}

/// Insurance claim handling: claims are registered, triaged, optionally
/// inspected, then settled or denied.
pub fn insurance_claim() -> HasSpec {
    let mut db = DatabaseSchema::new();
    let policies = db.add_relation("POLICIES", vec![data("coverage")]).unwrap();
    let holders = db
        .add_relation("HOLDERS", vec![data("name"), fk("policy", policies)])
        .unwrap();
    let mut root = TaskBuilder::new("ClaimsDesk");
    let holder = root.id_var("holder", holders);
    let severity = root.data_var("severity");
    let outcome = root.data_var("outcome");
    let claims = root.art_relation_like("CLAIMS", &[holder, severity]);
    root.service_parts(
        "Register",
        Condition::eq(Term::var(holder), Term::Null),
        Condition::and([
            Condition::neq(Term::var(holder), Term::Null),
            Condition::or([
                Condition::eq(Term::var(severity), Term::str("Minor")),
                Condition::eq(Term::var(severity), Term::str("Major")),
            ]),
            Condition::eq(Term::var(outcome), Term::Null),
        ]),
        vec![],
        None,
    );
    root.service_parts(
        "Park",
        Condition::neq(Term::var(holder), Term::Null),
        Condition::and([
            Condition::eq(Term::var(holder), Term::Null),
            Condition::eq(Term::var(severity), Term::Null),
            Condition::eq(Term::var(outcome), Term::Null),
        ]),
        vec![],
        Some(Update::Insert {
            rel: claims,
            vars: vec![holder, severity],
        }),
    );
    root.service_parts(
        "Resume",
        Condition::eq(Term::var(holder), Term::Null),
        Condition::True,
        vec![],
        Some(Update::Retrieve {
            rel: claims,
            vars: vec![holder, severity],
        }),
    );
    root.service_parts(
        "CloseClaim",
        Condition::or([
            Condition::eq(Term::var(outcome), Term::str("Settled")),
            Condition::eq(Term::var(outcome), Term::str("Denied")),
        ]),
        Condition::and([
            Condition::eq(Term::var(holder), Term::Null),
            Condition::eq(Term::var(outcome), Term::Null),
            Condition::eq(Term::var(severity), Term::Null),
        ]),
        vec![],
        None,
    );
    let mut builder = SpecBuilder::new("insurance-claim", db, root.build());
    builder.global_pre(Condition::and([
        Condition::eq(Term::var(holder), Term::Null),
        Condition::eq(Term::var(severity), Term::Null),
        Condition::eq(Term::var(outcome), Term::Null),
    ]));
    // Inspection is required for major claims.
    let mut inspect = TaskBuilder::new("Inspect");
    let i_holder = inspect.id_var("holder", holders);
    let i_report = inspect.data_var("report");
    inspect.inputs([i_holder]);
    inspect.outputs([i_report]);
    inspect.opening_pre(Condition::eq(Term::var(severity), Term::str("Major")));
    inspect.closing_pre(Condition::or([
        Condition::eq(Term::var(i_report), Term::str("Confirmed")),
        Condition::eq(Term::var(i_report), Term::str("Fraudulent")),
    ]));
    inspect.service_parts(
        "Visit",
        Condition::True,
        Condition::or([
            Condition::eq(Term::var(i_report), Term::str("Confirmed")),
            Condition::eq(Term::var(i_report), Term::str("Fraudulent")),
        ]),
        vec![i_holder],
        None,
    );
    builder
        .add_child_with_maps(
            "ClaimsDesk",
            inspect.build(),
            Some(vec![("holder".into(), "holder".into())]),
            Some(vec![("report".into(), "outcome".into())]),
        )
        .unwrap();
    // Settlement decides the payout.
    let mut settle = TaskBuilder::new("Settle");
    let s_holder = settle.id_var("holder", holders);
    let s_policy = settle.id_var("policy", policies);
    let s_name = settle.data_var("scratch_name");
    let s_outcome = settle.data_var("outcome");
    settle.inputs([s_holder]);
    settle.outputs([s_outcome]);
    settle.opening_pre(Condition::neq(Term::var(holder), Term::Null));
    settle.closing_pre(Condition::neq(Term::var(s_outcome), Term::Null));
    settle.service_parts(
        "Decide",
        Condition::True,
        Condition::and([
            Condition::Rel {
                rel: holders,
                id: Term::var(s_holder),
                args: vec![Term::var(s_name), Term::var(s_policy)],
            },
            Condition::implies(
                Condition::Rel {
                    rel: policies,
                    id: Term::var(s_policy),
                    args: vec![Term::str("Full")],
                },
                Condition::eq(Term::var(s_outcome), Term::str("Settled")),
            ),
            Condition::implies(
                Condition::not(Condition::Rel {
                    rel: policies,
                    id: Term::var(s_policy),
                    args: vec![Term::str("Full")],
                }),
                Condition::or([
                    Condition::eq(Term::var(s_outcome), Term::str("Settled")),
                    Condition::eq(Term::var(s_outcome), Term::str("Denied")),
                ]),
            ),
        ]),
        vec![s_holder],
        None,
    );
    builder.add_child("ClaimsDesk", settle.build()).unwrap();
    builder
        .build()
        .expect("insurance claim specification is well-formed")
}

/// A simple single-variable process used as a template for several further
/// workflows: a status machine with a work pool and one review subtask.
fn staged_process(name: &str, stages: &[&str], reviewer: &str, verdicts: (&str, &str)) -> HasSpec {
    let mut db = DatabaseSchema::new();
    let catalog = db.add_relation("CATALOG", vec![data("kind")]).unwrap();
    let mut root = TaskBuilder::new("Coordinator");
    let item = root.id_var("item", catalog);
    let stage = root.data_var("stage");
    let verdict = root.data_var("verdict");
    let pool = root.art_relation_like("BACKLOG", &[item, stage]);
    // Stage progression services.
    root.service_parts(
        "Open",
        Condition::eq(Term::var(stage), Term::Null),
        Condition::and([
            Condition::neq(Term::var(item), Term::Null),
            Condition::eq(Term::var(stage), Term::str(stages[0])),
        ]),
        vec![],
        None,
    );
    for window in stages.windows(2) {
        root.service_parts(
            format!("Advance_{}_{}", window[0], window[1]),
            Condition::eq(Term::var(stage), Term::str(window[0])),
            Condition::eq(Term::var(stage), Term::str(window[1])),
            vec![],
            None,
        );
    }
    root.service_parts(
        "Defer",
        Condition::neq(Term::var(stage), Term::Null),
        Condition::and([
            Condition::eq(Term::var(stage), Term::Null),
            Condition::eq(Term::var(item), Term::Null),
        ]),
        vec![],
        Some(Update::Insert {
            rel: pool,
            vars: vec![item, stage],
        }),
    );
    root.service_parts(
        "Pick",
        Condition::eq(Term::var(stage), Term::Null),
        Condition::True,
        vec![],
        Some(Update::Retrieve {
            rel: pool,
            vars: vec![item, stage],
        }),
    );
    let mut builder = SpecBuilder::new(name, db, root.build());
    builder.global_pre(Condition::and([
        Condition::eq(Term::var(item), Term::Null),
        Condition::eq(Term::var(stage), Term::Null),
        Condition::eq(Term::var(verdict), Term::Null),
    ]));
    let mut review = TaskBuilder::new(reviewer);
    let r_item = review.id_var("item", catalog);
    let r_kind = review.data_var("scratch_kind");
    let r_verdict = review.data_var("verdict");
    review.inputs([r_item]);
    review.outputs([r_verdict]);
    review.opening_pre(Condition::eq(
        Term::var(stage),
        Term::str(stages[stages.len() - 1]),
    ));
    review.closing_pre(Condition::or([
        Condition::eq(Term::var(r_verdict), Term::str(verdicts.0)),
        Condition::eq(Term::var(r_verdict), Term::str(verdicts.1)),
    ]));
    review.service_parts(
        "Evaluate",
        Condition::True,
        Condition::and([
            Condition::Rel {
                rel: catalog,
                id: Term::var(r_item),
                args: vec![Term::var(r_kind)],
            },
            Condition::or([
                Condition::eq(Term::var(r_verdict), Term::str(verdicts.0)),
                Condition::eq(Term::var(r_verdict), Term::str(verdicts.1)),
            ]),
        ]),
        vec![r_item],
        None,
    );
    builder.add_child("Coordinator", review.build()).unwrap();
    builder
        .build()
        .expect("staged process specification is well-formed")
}

/// Travel booking: request, quote, book, then a confirmation subtask.
pub fn travel_booking() -> HasSpec {
    staged_process(
        "travel-booking",
        &["Requested", "Quoted", "Booked"],
        "Confirm",
        ("Confirmed", "Cancelled"),
    )
}

/// Support ticket handling: triage, work, then a resolution review.
pub fn support_ticket() -> HasSpec {
    staged_process(
        "support-ticket",
        &["New", "Triaged", "InProgress"],
        "Resolve",
        ("Resolved", "Escalated"),
    )
}

/// Invoice processing: capture, match, then an approval subtask.
pub fn invoice_processing() -> HasSpec {
    staged_process(
        "invoice-processing",
        &["Captured", "Matched"],
        "Approve",
        ("Paid", "Disputed"),
    )
}

/// Hiring pipeline: screen, interview, then an offer decision subtask.
pub fn hiring_pipeline() -> HasSpec {
    staged_process(
        "hiring-pipeline",
        &["Screened", "Interviewed", "Shortlisted"],
        "Offer",
        ("Hired", "Declined"),
    )
}

/// Procurement: requisition, tender, then an award decision subtask.
pub fn procurement() -> HasSpec {
    staged_process(
        "procurement",
        &["Requisitioned", "Tendered"],
        "Award",
        ("Awarded", "Abandoned"),
    )
}

/// The eight base real-style workflows.
pub fn base_workflows() -> Vec<HasSpec> {
    vec![
        order_fulfillment(),
        loan_approval(),
        insurance_claim(),
        travel_booking(),
        support_ticket(),
        invoice_processing(),
        hiring_pipeline(),
        procurement(),
    ]
}

/// A variant with an extra audit-logging service on the root task
/// (structure grows, behaviour is unchanged).
fn audited(mut spec: HasSpec) -> HasSpec {
    spec.name = format!("{}-audited", spec.name);
    let root = spec.root();
    let var_count = spec.tasks[root.index()].vars.len();
    spec.tasks[root.index()].services.push(InternalService {
        name: "AuditLog".into(),
        pre: Condition::True,
        post: Condition::True,
        propagated: (0..var_count)
            .map(|i| verifas_model::VarId::new(i as u32))
            .collect(),
        update: None,
    });
    spec
}

/// A variant with an extra escalation flag cycled by two new services.
fn escalated(mut spec: HasSpec) -> HasSpec {
    spec.name = format!("{}-escalated", spec.name);
    let root = spec.root();
    let task: &mut Task = &mut spec.tasks[root.index()];
    let flag = verifas_model::VarId::new(task.vars.len() as u32);
    task.vars.push(verifas_model::Variable {
        name: "escalation".into(),
        typ: verifas_model::VarType::Data,
    });
    task.services.push(InternalService {
        name: "Escalate".into(),
        pre: Condition::eq(Term::var(flag), Term::Null),
        post: Condition::eq(Term::var(flag), Term::str("Escalated")),
        propagated: vec![],
        update: None,
    });
    task.services.push(InternalService {
        name: "Deescalate".into(),
        pre: Condition::eq(Term::var(flag), Term::str("Escalated")),
        post: Condition::eq(Term::var(flag), Term::Null),
        propagated: vec![],
        update: None,
    });
    spec
}

/// A variant without artifact relations (the restricted model the
/// Spin-based baseline supports).
fn flattened(spec: &HasSpec) -> HasSpec {
    let mut out = spec.without_artifact_relations();
    out.name = format!("{}-flat", spec.name);
    out
}

/// The full real set: the eight base workflows expanded to 32
/// specifications through systematic variants (audited, escalated and
/// flattened), matching the size of the paper's real set.
pub fn real_workflows() -> Vec<HasSpec> {
    let mut out = Vec::new();
    for spec in base_workflows() {
        out.push(audited(spec.clone()));
        out.push(escalated(spec.clone()));
        out.push(flattened(&spec));
        out.push(spec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_real_workflows_validate() {
        let all = real_workflows();
        assert_eq!(all.len(), 32);
        for spec in &all {
            spec.validate()
                .unwrap_or_else(|e| panic!("workflow {} invalid: {e}", spec.name));
        }
        // Names are unique.
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn order_fulfillment_matches_the_paper_structure() {
        let spec = order_fulfillment();
        assert_eq!(spec.tasks.len(), 5);
        assert_eq!(spec.db.len(), 3);
        let (_, root) = spec.task_by_name("ProcessOrders").unwrap();
        assert_eq!(root.services.len(), 3);
        assert_eq!(root.art_relations.len(), 1);
        assert_eq!(root.art_relations[0].name, "ORDERS");
        assert!(spec.task_by_name("TakeOrder").is_some());
        assert!(spec.task_by_name("CheckCredit").is_some());
        assert!(spec.task_by_name("Restock").is_some());
        assert!(spec.task_by_name("ShipItem").is_some());
    }

    #[test]
    fn buggy_variant_differs_only_in_the_shipping_guard() {
        let good = order_fulfillment();
        let bad = order_fulfillment_buggy();
        let (ship, _) = good.task_by_name("ShipItem").unwrap();
        assert_ne!(
            good.tasks[ship.index()].opening.pre,
            bad.tasks[ship.index()].opening.pre
        );
        bad.validate().unwrap();
    }

    #[test]
    fn statistics_are_in_a_realistic_range() {
        for spec in base_workflows() {
            let stats = spec.stats();
            assert!(stats.tasks >= 2, "{}", spec.name);
            assert!(stats.variables >= 3, "{}", spec.name);
            assert!(stats.services >= 3, "{}", spec.name);
        }
    }
}
