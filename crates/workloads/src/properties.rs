//! LTL-FO property generation for the benchmark (Section 4.1).
//!
//! For each workflow, twelve LTL-FO properties of the root task are
//! produced — one per template of Table 4 — by replacing the template's
//! placeholder propositions with FO conditions drawn from the pre/post
//! conditions of the specification's root-task services and their
//! sub-formulas (atoms), exactly as described in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verifas_ltl::{all_templates, Ltl, LtlFoProperty, PropAtom};
use verifas_model::{Condition, HasSpec};

/// Candidate FO conditions for a task: the pre/post conditions of its
/// services, their atoms, and the opening guards of its children.
pub fn candidate_conditions(spec: &HasSpec) -> Vec<Condition> {
    let root = spec.task(spec.root());
    let mut out = Vec::new();
    for svc in &root.services {
        for cond in [&svc.pre, &svc.post] {
            if !matches!(cond, Condition::True | Condition::False) {
                out.push(cond.clone());
            }
            out.extend(cond.atoms());
        }
    }
    for &child in spec.children(spec.root()) {
        let guard = &spec.task(child).opening.pre;
        if !matches!(guard, Condition::True | Condition::False) {
            out.push(guard.clone());
        }
        out.extend(guard.atoms());
    }
    if out.is_empty() {
        out.push(Condition::True);
    }
    out
}

/// Generate the twelve benchmark properties (one per Table 4 template) for
/// the root task of a specification, deterministically from a seed.
pub fn generate_properties(spec: &HasSpec, seed: u64) -> Vec<LtlFoProperty> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_5EED);
    let candidates = candidate_conditions(spec);
    let pick = |rng: &mut StdRng| candidates[rng.gen_range(0..candidates.len())].clone();
    all_templates()
        .into_iter()
        .map(|template| {
            let phi_cond = pick(&mut rng);
            let psi_cond = pick(&mut rng);
            let (formula, props) = match template.arity {
                0 => (template.instantiate(&Ltl::True, &Ltl::True), vec![]),
                1 => (
                    template.instantiate(&Ltl::prop(0), &Ltl::prop(0)),
                    vec![PropAtom::Condition(phi_cond)],
                ),
                _ => (
                    template.instantiate(&Ltl::prop(0), &Ltl::prop(1)),
                    vec![PropAtom::Condition(phi_cond), PropAtom::Condition(psi_cond)],
                ),
            };
            LtlFoProperty::new(
                format!("{}::{}", spec.name, template.name),
                spec.root(),
                vec![],
                formula,
                props,
            )
        })
        .collect()
}

/// The paper's example property (†) for the order fulfillment workflow:
/// "if an order is taken and the ordered item is out of stock, then the
/// item must be restocked before it is shipped", with the item connected
/// across time by a universally quantified global variable.
pub fn order_fulfillment_property(spec: &HasSpec) -> LtlFoProperty {
    use verifas_model::{ServiceRef, Term, VarType};
    let (_, root) = spec
        .task_by_name("ProcessOrders")
        .expect("order fulfillment spec");
    let item_id = root.var_by_name("item_id").unwrap().0;
    let instock = root.var_by_name("instock").unwrap().0;
    let (take, _) = spec.task_by_name("TakeOrder").unwrap();
    let (restock, _) = spec.task_by_name("Restock").unwrap();
    let (ship, _) = spec.task_by_name("ShipItem").unwrap();
    let items_rel = spec.db.relation_by_name("ITEMS").unwrap().0;
    // Propositions:
    // p0: close(TakeOrder) ∧ item_id = i ∧ instock = "No"
    // p1: open(ShipItem) ∧ item_id = i
    // p2: open(Restock) ∧ item_id = i
    // Service occurrences and conditions are conjoined at the LTL level by
    // pairing the service proposition with the condition proposition.
    let p_take = PropAtom::Service(ServiceRef::Closing(take));
    let p_ship = PropAtom::Service(ServiceRef::Opening(ship));
    let p_restock = PropAtom::Service(ServiceRef::Opening(restock));
    let item_is_i = Condition::and([
        Condition::eq(Term::var(item_id), Term::global(0)),
        Condition::neq(Term::var(item_id), Term::Null),
    ]);
    let out_of_stock = Condition::eq(Term::var(instock), Term::str("No"));
    let props = vec![
        p_take,                                 // 0
        PropAtom::Condition(item_is_i.clone()), // 1
        PropAtom::Condition(out_of_stock),      // 2
        p_ship,                                 // 3
        p_restock,                              // 4
    ];
    // ∀i G((σc_TakeOrder ∧ item=i ∧ instock=No) →
    //        (¬(σo_ShipItem ∧ item=i) U (σo_Restock ∧ item=i)))
    let trigger = Ltl::and(Ltl::prop(0), Ltl::and(Ltl::prop(1), Ltl::prop(2)));
    let ship_bad = Ltl::and(Ltl::prop(3), Ltl::prop(1));
    let restock_ok = Ltl::and(Ltl::prop(4), Ltl::prop(1));
    let formula = Ltl::globally(Ltl::implies(
        trigger,
        Ltl::until(Ltl::not(ship_bad), restock_ok),
    ));
    let _ = items_rel;
    LtlFoProperty::new(
        "restock-before-ship",
        spec.root(),
        vec![VarType::Id(items_rel)],
        formula,
        props,
    )
}

/// A named liveness property for the loan approval workflow: "a rejected
/// decision is eventually archived" (the desk slot is cleared).  Used by
/// the spec-language frontend's cross-check corpus
/// (`examples/specs/loan_approval.has` must lower to exactly this
/// property) and exported for the same reason as
/// [`order_fulfillment_property`].
pub fn loan_approval_property(spec: &HasSpec) -> LtlFoProperty {
    use verifas_model::Term;
    let (_, root) = spec.task_by_name("LoanDesk").expect("loan approval spec");
    let decision = root.var_by_name("decision").unwrap().0;
    let rejected = Condition::eq(Term::var(decision), Term::str("Rejected"));
    let cleared = Condition::eq(Term::var(decision), Term::Null);
    // G(rejected -> F cleared)
    LtlFoProperty::new(
        "rejection-reaches-archive",
        spec.root(),
        vec![],
        Ltl::globally(Ltl::implies(Ltl::prop(0), Ltl::eventually(Ltl::prop(1)))),
        vec![PropAtom::Condition(rejected), PropAtom::Condition(cleared)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::{loan_approval, order_fulfillment, order_fulfillment_buggy};

    #[test]
    fn twelve_properties_per_workflow_and_they_validate() {
        let spec = order_fulfillment();
        let properties = generate_properties(&spec, 42);
        assert_eq!(properties.len(), 12);
        for p in &properties {
            p.validate(&spec).unwrap();
        }
        // Deterministic for a fixed seed.
        let again = generate_properties(&spec, 42);
        assert_eq!(properties.len(), again.len());
        for (a, b) in properties.iter().zip(&again) {
            assert_eq!(a.formula, b.formula);
        }
    }

    #[test]
    fn paper_property_validates_on_both_variants() {
        for spec in [order_fulfillment(), order_fulfillment_buggy()] {
            let p = order_fulfillment_property(&spec);
            p.validate(&spec).unwrap();
            assert_eq!(p.global_vars.len(), 1);
            assert_eq!(p.props.len(), 5);
        }
    }

    #[test]
    fn candidates_come_from_the_specification() {
        let spec = order_fulfillment();
        let candidates = candidate_conditions(&spec);
        assert!(candidates.len() > 5);
    }

    #[test]
    fn loan_property_validates() {
        let spec = loan_approval();
        let p = loan_approval_property(&spec);
        p.validate(&spec).unwrap();
        assert_eq!(p.props.len(), 2);
        assert!(p.global_vars.is_empty());
    }
}
