//! Cyclomatic complexity of HAS\* specifications (Section 4.2).
//!
//! The paper adapts McCabe's cyclomatic complexity to HAS\*: pick a task
//! `T` and a non-ID variable `x`, project every service of `T` onto `{x}`
//! (keeping only the atoms that mention `x` and constants), view the
//! result as a transition graph whose nodes are the possible "abstract
//! values" of `x` (the constants it is compared against, `null`, and
//! "any other value") and whose edges connect every value satisfying the
//! projected pre-condition to every value satisfying the projected
//! post-condition.  The cyclomatic complexity of that graph is
//! `|E| − |V| + 2`; the complexity of the specification is the maximum
//! over all tasks and non-ID variables.

use std::collections::BTreeSet;
use verifas_model::{CmpOp, Condition, DataValue, HasSpec, Task, Term, VarId, VarRef, VarType};

/// Abstract value of the projected variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum AbstractValue {
    Null,
    Const(DataValue),
    Other,
}

/// Evaluate a condition projected onto variable `x`: atoms not mentioning
/// `x` (or mentioning other variables) are treated as `true` (they are
/// dropped by the projection), atoms comparing `x` with a constant or
/// `null` are evaluated against the abstract value.
fn eval_projected(cond: &Condition, x: VarId, value: &AbstractValue) -> bool {
    match cond {
        Condition::True => true,
        Condition::False => false,
        Condition::Cmp(l, op, r) => {
            let (var_side, other) = match (l, r) {
                (Term::Var(VarRef::Task(v)), t) if *v == x => (true, t),
                (t, Term::Var(VarRef::Task(v))) if *v == x => (true, t),
                _ => (false, l),
            };
            if !var_side {
                return true; // projected away
            }
            let holds_eq = match other {
                Term::Null => *value == AbstractValue::Null,
                Term::Const(c) => *value == AbstractValue::Const(c.clone()),
                Term::Var(_) => return true, // comparison with another variable: projected away
            };
            match op {
                CmpOp::Eq => holds_eq,
                CmpOp::Neq => !holds_eq,
            }
        }
        Condition::Rel { .. } => true, // relational atoms are projected away
        Condition::Not(inner) => {
            // Only negations of atoms that survive projection matter; a
            // projected-away atom inside a negation is also treated as true.
            match inner.as_ref() {
                Condition::Cmp(..) => {
                    !eval_projected(inner, x, value) || {
                        // If the inner comparison was projected away it returned
                        // true and the negation would wrongly become false; check
                        // whether the atom actually mentions x.
                        !mentions(inner, x)
                    }
                }
                _ => true,
            }
        }
        Condition::And(cs) => cs.iter().all(|c| eval_projected(c, x, value)),
        Condition::Or(cs) => cs.iter().any(|c| eval_projected(c, x, value)),
    }
}

fn mentions(cond: &Condition, x: VarId) -> bool {
    cond.task_variables().contains(&x)
}

/// Constants a variable is compared against anywhere in a task's services.
fn constants_for(task: &Task, x: VarId) -> BTreeSet<DataValue> {
    let mut out = BTreeSet::new();
    let mut visit = |cond: &Condition| {
        for atom in cond.atoms() {
            if let Condition::Cmp(l, _, r) = &atom {
                let involves = matches!(l, Term::Var(VarRef::Task(v)) if *v == x)
                    || matches!(r, Term::Var(VarRef::Task(v)) if *v == x);
                if involves {
                    if let Term::Const(c) = l {
                        out.insert(c.clone());
                    }
                    if let Term::Const(c) = r {
                        out.insert(c.clone());
                    }
                }
            }
        }
    };
    for svc in &task.services {
        visit(&svc.pre);
        visit(&svc.post);
    }
    visit(&task.closing.pre);
    out
}

/// Cyclomatic complexity of the control-flow graph obtained by projecting
/// the services of `task` onto the non-ID variable `x`.
fn complexity_of_projection(task: &Task, x: VarId) -> i64 {
    let mut values: Vec<AbstractValue> = vec![AbstractValue::Null, AbstractValue::Other];
    values.extend(constants_for(task, x).into_iter().map(AbstractValue::Const));
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for svc in &task.services {
        for (i, from) in values.iter().enumerate() {
            if !eval_projected(&svc.pre, x, from) {
                continue;
            }
            for (j, to) in values.iter().enumerate() {
                if eval_projected(&svc.post, x, to) {
                    edges.insert((i, j));
                }
            }
        }
    }
    edges.len() as i64 - values.len() as i64 + 2
}

/// The cyclomatic complexity `M(A)` of a specification: the maximum over
/// all tasks and non-ID variables of the projected control-flow graph
/// complexity.
pub fn cyclomatic_complexity(spec: &HasSpec) -> i64 {
    let mut best = 0;
    for (_, task) in spec.iter_tasks() {
        for (vid, var) in task.iter_vars() {
            if var.typ == VarType::Data {
                best = best.max(complexity_of_projection(task, vid));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::{base_workflows, order_fulfillment};
    use crate::synthetic::{generate_set, SyntheticParams};

    #[test]
    fn complexity_grows_with_more_transitions() {
        use verifas_model::schema::attr::data;
        use verifas_model::{DatabaseSchema, SpecBuilder, TaskBuilder};
        // Two specs: a 2-stage cycle and a 4-stage cycle with a skip edge.
        let build = |stages: &[&str], skip: bool| {
            let mut db = DatabaseSchema::new();
            db.add_relation("R", vec![data("a")]).unwrap();
            let mut root = TaskBuilder::new("Root");
            let s = root.data_var("s");
            root.service_parts(
                "start",
                Condition::eq(Term::var(s), Term::Null),
                Condition::eq(Term::var(s), Term::str(stages[0])),
                vec![],
                None,
            );
            for w in stages.windows(2) {
                root.service_parts(
                    format!("go_{}_{}", w[0], w[1]),
                    Condition::eq(Term::var(s), Term::str(w[0])),
                    Condition::eq(Term::var(s), Term::str(w[1])),
                    vec![],
                    None,
                );
            }
            if skip {
                root.service_parts(
                    "skip",
                    Condition::eq(Term::var(s), Term::str(stages[0])),
                    Condition::eq(Term::var(s), Term::str(stages[stages.len() - 1])),
                    vec![],
                    None,
                );
            }
            SpecBuilder::new("c", db, root.build()).build().unwrap()
        };
        let small = build(&["A", "B"], false);
        let large = build(&["A", "B", "C", "D"], true);
        assert!(cyclomatic_complexity(&large) > cyclomatic_complexity(&small));
    }

    #[test]
    fn real_workflows_have_moderate_complexity() {
        for spec in base_workflows() {
            let m = cyclomatic_complexity(&spec);
            assert!(m >= 1, "{}: {m}", spec.name);
            assert!(m <= 40, "{}: {m}", spec.name);
        }
        assert!(cyclomatic_complexity(&order_fulfillment()) >= 2);
    }

    #[test]
    fn synthetic_workflows_have_complexity_too() {
        for spec in generate_set(SyntheticParams::small(), 3, 5) {
            let m = cyclomatic_complexity(&spec);
            assert!(m >= 0);
        }
    }
}
