#!/usr/bin/env python3
"""CI gate over the hand-written documentation (stdlib only).

Checks, over README.md and every docs/*.md file:

1. every relative markdown link points at a file that exists in the
   repository (http/https/mailto links are out of scope — CI must not
   depend on external availability);
2. every anchor (`#section`, alone or after a relative path) resolves to
   a heading of the target file, using GitHub's slug rules;
3. docs/ARCHITECTURE.md mentions every workspace crate by package name,
   so a crate added without a place in the architecture map fails CI.

Exit status 0 iff all checks pass; failures are listed one per line.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
FENCE = re.compile(r"^\s*(```|~~~)")


def strip_fences(text: str):
    """Markdown lines outside fenced code blocks."""
    inside = False
    for line in text.splitlines():
        if FENCE.match(line):
            inside = not inside
            continue
        if not inside:
            yield line


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading line."""
    # Inline code and emphasis markers do not appear in slugs.
    heading = re.sub(r"[`*_]", "", heading.strip())
    # Markdown links in headings keep only their text.
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    slugs = set()
    counts = {}
    for line in strip_fences(path.read_text(encoding="utf-8")):
        m = HEADING.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(doc: Path, failures: list):
    text = doc.read_text(encoding="utf-8")
    for line in strip_fences(text):
        for m in LINK.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    failures.append(f"{doc.relative_to(ROOT)}: broken link {target!r}")
                    continue
            else:
                resolved = doc
            if anchor:
                if resolved.suffix != ".md" or not resolved.is_file():
                    continue  # anchors into non-markdown targets: out of scope
                if anchor not in anchors_of(resolved):
                    failures.append(
                        f"{doc.relative_to(ROOT)}: anchor {target!r} matches no "
                        f"heading of {resolved.relative_to(ROOT)}"
                    )


def workspace_crates() -> list:
    """Package names of every workspace member (and the root package)."""
    manifest = (ROOT / "Cargo.toml").read_text(encoding="utf-8")
    members = re.search(r"members\s*=\s*\[([^\]]*)\]", manifest, re.S)
    dirs = re.findall(r'"([^"]+)"', members.group(1)) if members else []
    names = []
    for directory in ["."] + dirs:
        crate_manifest = (ROOT / directory / "Cargo.toml").read_text(encoding="utf-8")
        m = re.search(r'^name\s*=\s*"([^"]+)"', crate_manifest, re.M)
        if m:
            names.append(m.group(1))
    return names


def main() -> int:
    failures = []
    docs = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]
    for doc in docs:
        check_links(doc, failures)

    architecture = ROOT / "docs" / "ARCHITECTURE.md"
    if not architecture.is_file():
        failures.append("docs/ARCHITECTURE.md is missing")
    else:
        text = architecture.read_text(encoding="utf-8")
        for crate in workspace_crates():
            if crate not in text:
                failures.append(
                    f"docs/ARCHITECTURE.md does not mention workspace crate {crate!r}"
                )

    for failure in failures:
        print(failure)
    print(
        f"{len(docs)} documents checked: "
        + ("FAILED" if failures else "all links, anchors and crates resolve")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
