//! The `verifas` command-line verifier: drive the whole engine from a
//! textual `.has` specification.
//!
//! ```text
//! verifas check    <spec.has> [--prop NAME] [--threads N] [--json OUT]
//!                             [--base PRIOR.json] [--incremental MODE]
//!                             [--max-states N] [--max-millis MS]
//! verifas batch    <spec.has> [--all-props] [--threads N] [--json OUT]
//!                             [--batch-threads N] [--schedule flat|sharded]
//!                             [--max-states N] [--max-millis MS]
//! verifas validate <spec.has>
//! verifas hash     <spec.has>
//! verifas fmt      <spec.has> [--write | --check]
//! verifas serve    [--addr HOST:PORT] [--cores N] [--sessions N]
//!                  [--max-interactive N] [--max-batch N]
//!                  [--incremental MODE] [--memory-mb N]
//! verifas submit   <spec.has> [--addr HOST:PORT] [--class NAME]
//!                  [--prop NAME] [--deadline-ms MS] [--retries N]
//! verifas fuzz     [--seeds A..B] [--matrix ARM,ARM,...] [--shrink]
//!                  [--repro-dir DIR] [--max-states N] [--max-millis MS]
//! ```
//!
//! `check` verifies properties one at a time through `Engine::check`;
//! `batch` routes the whole property set through `Engine::batch()` with
//! the sharded scheduler and streams per-property results as they land;
//! `serve` runs the multi-tenant verification daemon (`verifas-serve`)
//! until a `POST /v1/shutdown` stops it; `submit` sends one spec to a
//! running daemon and streams the response frames, retrying `overloaded`
//! refusals and connection resets with jittered exponential backoff.
//!
//! `fuzz` drives the differential harness in `crates/fuzzgen`: each
//! seed generates a valid specification, runs it through every selected
//! oracle arm, and any disagreement with the baseline engine is a
//! failure (exit 1), minimized to a small `.has` repro when `--shrink`
//! is given.  See `docs/FUZZING.md` for the matrix and the seed-replay
//! workflow.  A hidden `--corrupt-arm ARM` flag deliberately corrupts
//! one arm's reports — it exists to prove, in CI and in tests, that the
//! harness actually catches and shrinks a divergence.
//!
//! `serve` also accepts a hidden `--fault-plan PLAN` flag (e.g.
//! `--fault-plan seed=42,conn-panic=20,write-reset=50`) that installs a
//! seeded, replayable fault-injection plan — chaos testing and CI only;
//! see `crates/serve/src/faults.rs`.
//!
//! The edit loop (`docs/SPEC_LANGUAGE.md` walks through it): `check
//! --json out.json` embeds an `incremental` snapshot (per-task slice
//! hashes plus report fingerprints) in the output document; a later
//! `check --base out.json` on the *edited* spec reuses every prior
//! report whose task slice, property and options are provably unchanged
//! and verifies only the rest.  `--incremental cold` disables reuse,
//! `preproc` (the default with `--base`) also shares preprocessing
//! within the run, and `replay` additionally memoizes transition
//! enumerations across the run's searches.
//! Exit codes: 0 — every requested verification completed (whatever the
//! verdict); 1 — `fmt --check` found unformatted input; 2 — any error
//! (parse, resolution, I/O, usage).

use std::process::ExitCode;
use verifas::core::delta::{fingerprint, slice_hash};
use verifas::core::{spec_hash_hex, Json};
use verifas::fuzzgen::{run_sweep, FuzzConfig, OracleArm};
use verifas::prelude::*;
use verifas::serve::{AdmissionLimits, FaultPlan, ServeConfig, Server};
use verifas::spec::{self, CompiledSpec};
use verifas::ReuseMode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: verifas <command> <spec.has> [options]

commands:
  check      verify properties one at a time (default: every property)
  batch      verify every property as one scheduled batch (Engine::batch)
  validate   parse, resolve and type-check the specification and properties
  hash       print the canonical spec hash (the serve session-cache key)
  fmt        print the specification in canonical formatting
  serve      run the multi-tenant verification daemon (no spec file)
  submit     send a spec to a running daemon, streaming response frames
             (retries `overloaded` and resets with jittered backoff)
  fuzz       generate seeded specs and run them through the differential
             oracle matrix (no spec file; exit 1 on any divergence)

options:
  --prop NAME        check only the named property (check only)
  --base PRIOR.json  check: reuse reports from a prior `--json` snapshot
                     whose task slice / property / options are unchanged
  --incremental MODE reuse mode: `cold`, `preproc` or `replay` (check:
                     default `preproc` when --base is given, else `cold`;
                     serve: default `preproc`)
  --all-props        verify every property (batch; this is the default)
  --threads N        worker threads (check: per search; batch: core budget; 0 = auto)
  --batch-threads N  batch: core budget shared by the whole batch (0 = auto;
                     overrides --threads)
  --schedule POLICY  batch: `sharded` (adaptive, default) or `flat`
  --json OUT         write the reports as a JSON document to OUT
  --max-states N     per-phase state limit (default 100000)
  --max-millis MS    per-phase wall-clock limit (default 60000)
  --write            fmt: rewrite the file in place
  --check            fmt: exit 1 if the file is not canonically formatted
  --addr HOST:PORT   serve: listen address (default 127.0.0.1:7464)
                     submit: daemon address to send to
  --cores N          serve: server-global core budget (0 = all cores)
  --sessions N       serve: loaded-session LRU capacity (default 8)
  --max-interactive N  serve: in-flight limit of the interactive class
  --max-batch N      serve: in-flight limit of the batch class
  --memory-mb N      serve: soft memory budget in MiB — searches over it
                     degrade to typed resource_exhausted errors (0 = off)
  --class NAME       submit: priority class, `interactive` or `batch`
  --deadline-ms MS   submit: per-request deadline (keeps ticking while
                     the request waits in the admission queue)
  --retries N        submit: attempts on `overloaded`/reset (default 5)
  --seeds A..B       fuzz: half-open seed range to sweep (default 0..256)
  --matrix ARMS      fuzz: comma-separated oracle arms (default: all of
                     threads,index,layout,repeated,preproc,replay,serve)
  --shrink           fuzz: minimize each divergence to a small repro
  --repro-dir DIR    fuzz: write each divergence's `.has` repro to DIR";

struct Options {
    file: String,
    prop: Option<String>,
    base: Option<String>,
    incremental: Option<ReuseMode>,
    threads: usize,
    batch_threads: Option<usize>,
    schedule: Option<SchedulePolicy>,
    json: Option<String>,
    max_states: Option<usize>,
    max_millis: Option<u64>,
    write: bool,
    check: bool,
    addr: String,
    cores: usize,
    sessions: usize,
    max_interactive: usize,
    max_batch: usize,
    memory_mb: usize,
    fault_plan: Option<String>,
    class: String,
    deadline_ms: Option<u64>,
    retries: u32,
    seeds: Option<String>,
    matrix: Option<String>,
    shrink: bool,
    repro_dir: Option<String>,
    corrupt_arm: Option<String>,
    /// Every flag that appeared, for per-command applicability checks.
    seen: Vec<&'static str>,
}

/// The flags each subcommand accepts; anything else is rejected rather
/// than silently ignored (a typo like `check --check` must surface).
fn allowed_flags(command: &str) -> &'static [&'static str] {
    match command {
        "check" => &[
            "--prop",
            "--threads",
            "--json",
            "--base",
            "--incremental",
            "--max-states",
            "--max-millis",
        ],
        "batch" => &[
            "--all-props",
            "--threads",
            "--batch-threads",
            "--schedule",
            "--json",
            "--max-states",
            "--max-millis",
        ],
        "fmt" => &["--write", "--check"],
        "serve" => &[
            "--addr",
            "--cores",
            "--sessions",
            "--max-interactive",
            "--max-batch",
            "--incremental",
            "--memory-mb",
            "--fault-plan",
        ],
        "submit" => &["--addr", "--class", "--prop", "--deadline-ms", "--retries"],
        "fuzz" => &[
            "--seeds",
            "--matrix",
            "--shrink",
            "--repro-dir",
            "--corrupt-arm",
            "--max-states",
            "--max-millis",
        ],
        _ => &[],
    }
}

fn parse_options(args: &[String], needs_file: bool) -> Result<Options, String> {
    let mut options = Options {
        file: String::new(),
        prop: None,
        base: None,
        incremental: None,
        threads: 1,
        batch_threads: None,
        schedule: None,
        json: None,
        max_states: None,
        max_millis: None,
        write: false,
        check: false,
        addr: "127.0.0.1:7464".to_owned(),
        cores: 0,
        sessions: 8,
        max_interactive: 8,
        max_batch: 2,
        memory_mb: 0,
        fault_plan: None,
        class: "interactive".to_owned(),
        deadline_ms: None,
        retries: 5,
        seeds: None,
        matrix: None,
        shrink: false,
        repro_dir: None,
        corrupt_arm: None,
        seen: Vec::new(),
    };
    let mut iter = args.iter();
    let value_of = |flag: &str, iter: &mut std::slice::Iter<'_, String>| {
        iter.next()
            .cloned()
            .ok_or_else(|| format!("error: {flag} needs a value\n\n{USAGE}"))
    };
    while let Some(arg) = iter.next() {
        if let Some(flag) = KNOWN_FLAGS.iter().find(|f| **f == arg.as_str()) {
            options.seen.push(flag);
        }
        match arg.as_str() {
            "--prop" => options.prop = Some(value_of("--prop", &mut iter)?),
            "--base" => options.base = Some(value_of("--base", &mut iter)?),
            "--incremental" => {
                let name = value_of("--incremental", &mut iter)?;
                options.incremental = Some(ReuseMode::from_name(&name).ok_or_else(|| {
                    format!(
                        "error: --incremental must be `cold`, `preproc` or `replay`, not {name:?}"
                    )
                })?)
            }
            "--threads" => {
                options.threads = value_of("--threads", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --threads needs a number".to_string())?
            }
            "--batch-threads" => {
                options.batch_threads = Some(
                    value_of("--batch-threads", &mut iter)?
                        .parse()
                        .map_err(|_| "error: --batch-threads needs a number".to_string())?,
                )
            }
            "--schedule" => {
                options.schedule = Some(match value_of("--schedule", &mut iter)?.as_str() {
                    "flat" => SchedulePolicy::Flat,
                    "sharded" => SchedulePolicy::Sharded,
                    other => {
                        return Err(format!(
                            "error: --schedule must be `flat` or `sharded`, not {other:?}"
                        ))
                    }
                })
            }
            "--json" => options.json = Some(value_of("--json", &mut iter)?),
            "--max-states" => {
                options.max_states = Some(
                    value_of("--max-states", &mut iter)?
                        .parse()
                        .map_err(|_| "error: --max-states needs a number".to_string())?,
                )
            }
            "--max-millis" => {
                options.max_millis = Some(
                    value_of("--max-millis", &mut iter)?
                        .parse()
                        .map_err(|_| "error: --max-millis needs a number".to_string())?,
                )
            }
            "--all-props" => {}
            "--write" => options.write = true,
            "--check" => options.check = true,
            "--addr" => options.addr = value_of("--addr", &mut iter)?,
            "--cores" => {
                options.cores = value_of("--cores", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --cores needs a number".to_string())?
            }
            "--sessions" => {
                options.sessions = value_of("--sessions", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --sessions needs a number".to_string())?
            }
            "--max-interactive" => {
                options.max_interactive = value_of("--max-interactive", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --max-interactive needs a number".to_string())?
            }
            "--max-batch" => {
                options.max_batch = value_of("--max-batch", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --max-batch needs a number".to_string())?
            }
            "--memory-mb" => {
                options.memory_mb = value_of("--memory-mb", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --memory-mb needs a number".to_string())?
            }
            "--fault-plan" => options.fault_plan = Some(value_of("--fault-plan", &mut iter)?),
            "--class" => options.class = value_of("--class", &mut iter)?,
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    value_of("--deadline-ms", &mut iter)?
                        .parse()
                        .map_err(|_| "error: --deadline-ms needs a number".to_string())?,
                )
            }
            "--retries" => {
                options.retries = value_of("--retries", &mut iter)?
                    .parse()
                    .map_err(|_| "error: --retries needs a number".to_string())?
            }
            "--seeds" => options.seeds = Some(value_of("--seeds", &mut iter)?),
            "--matrix" => options.matrix = Some(value_of("--matrix", &mut iter)?),
            "--shrink" => options.shrink = true,
            "--repro-dir" => options.repro_dir = Some(value_of("--repro-dir", &mut iter)?),
            "--corrupt-arm" => options.corrupt_arm = Some(value_of("--corrupt-arm", &mut iter)?),
            flag if flag.starts_with("--") => {
                return Err(format!("error: unknown option {flag}\n\n{USAGE}"))
            }
            path if options.file.is_empty() => options.file = path.to_string(),
            extra => return Err(format!("error: unexpected argument {extra:?}\n\n{USAGE}")),
        }
    }
    if needs_file && options.file.is_empty() {
        return Err(format!("error: no specification file given\n\n{USAGE}"));
    }
    if !needs_file && !options.file.is_empty() {
        return Err(format!(
            "error: unexpected argument {:?}\n\n{USAGE}",
            options.file
        ));
    }
    Ok(options)
}

/// Every flag any subcommand knows about.
const KNOWN_FLAGS: &[&str] = &[
    "--prop",
    "--base",
    "--incremental",
    "--threads",
    "--batch-threads",
    "--schedule",
    "--json",
    "--max-states",
    "--max-millis",
    "--all-props",
    "--write",
    "--check",
    "--addr",
    "--cores",
    "--sessions",
    "--max-interactive",
    "--max-batch",
    "--memory-mb",
    "--fault-plan",
    "--class",
    "--deadline-ms",
    "--retries",
    "--seeds",
    "--matrix",
    "--shrink",
    "--repro-dir",
    "--corrupt-arm",
];

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(USAGE.to_string());
    };
    let options = parse_options(&args[1..], command != "serve" && command != "fuzz")?;
    let allowed = allowed_flags(command);
    if let Some(flag) = options.seen.iter().find(|f| !allowed.contains(f)) {
        return Err(format!(
            "error: {flag} does not apply to `{command}`\n\n{USAGE}"
        ));
    }
    if command == "serve" {
        return serve(&options);
    }
    if command == "fuzz" {
        return fuzz(&options);
    }
    let source = std::fs::read_to_string(&options.file)
        .map_err(|e| format!("error: cannot read {}: {e}", options.file))?;
    match command.as_str() {
        "check" => check(&options, &source, false),
        "batch" => check(&options, &source, true),
        "validate" => validate(&options, &source),
        "hash" => hash(&options, &source),
        "fmt" => fmt(&options, &source),
        "submit" => submit(&options, &source),
        other => Err(format!("error: unknown command {other:?}\n\n{USAGE}")),
    }
}

fn compile(options: &Options, source: &str) -> Result<CompiledSpec, String> {
    spec::compile(source).map_err(|e| e.render(&options.file))
}

fn verifier_options(options: &Options) -> VerifierOptions {
    let mut out = VerifierOptions::default();
    if let Some(max_states) = options.max_states {
        out.limits.max_states = max_states;
    }
    if let Some(max_millis) = options.max_millis {
        out.limits.max_millis = max_millis;
    }
    out
}

/// The options a `check` search actually runs with — the fingerprint key
/// of snapshot reports, so a later `--base` run only reuses a report
/// produced under identical options.
fn effective_options(options: &Options) -> VerifierOptions {
    let mut out = verifier_options(options);
    out.search_threads = options.threads;
    out
}

fn hex64(value: u64) -> String {
    format!("{value:016x}")
}

/// A parsed `--base` snapshot: the prior run's per-task slice hashes and
/// its definite, uncancelled reports keyed by fingerprints.
struct BaseSnapshot {
    /// task name → slice hash (hex).
    slices: Vec<(String, String)>,
    /// (property fingerprint, options fingerprint, task name, report).
    reports: Vec<(String, String, String, VerificationReport)>,
}

impl BaseSnapshot {
    /// Parse the `incremental` member of a prior `--json` document.
    fn load(path: &str) -> Result<BaseSnapshot, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("error: cannot read {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("error: {path}: invalid JSON: {e}"))?;
        let incremental = doc.get("incremental").ok_or_else(|| {
            format!(
                "error: {path}: no \"incremental\" member (not a `verifas check --json` snapshot?)"
            )
        })?;
        let all_reports = doc
            .get("reports")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("error: {path}: no \"reports\" array"))?;
        let mut slices = Vec::new();
        for entry in incremental
            .get("slices")
            .and_then(Json::as_array)
            .unwrap_or_default()
        {
            if let (Some(task), Some(hash)) = (
                entry.get("task").and_then(Json::as_str),
                entry.get("hash").and_then(Json::as_str),
            ) {
                slices.push((task.to_owned(), hash.to_owned()));
            }
        }
        let mut reports = Vec::new();
        for entry in incremental
            .get("reports")
            .and_then(Json::as_array)
            .unwrap_or_default()
        {
            let (Some(index), Some(pfp), Some(ofp), Some(task)) = (
                entry.get("index").and_then(Json::as_u64),
                entry.get("property_fp").and_then(Json::as_str),
                entry.get("options_fp").and_then(Json::as_str),
                entry.get("task").and_then(Json::as_str),
            ) else {
                continue;
            };
            let Some(report) = all_reports.get(index as usize) else {
                continue;
            };
            // Re-render and reparse through the report's own schema-checked
            // reader; a malformed or stale entry is skipped, not fatal.
            let Ok(report) = VerificationReport::from_json(&report.to_string()) else {
                continue;
            };
            reports.push((pfp.to_owned(), ofp.to_owned(), task.to_owned(), report));
        }
        Ok(BaseSnapshot { slices, reports })
    }

    /// The prior report for `property` under `effective` options — if and
    /// only if the property's task slice is bit-identically unchanged in
    /// `spec` and the fingerprints match.
    fn lookup(
        &self,
        spec: &HasSpec,
        property: &LtlFoProperty,
        effective: &VerifierOptions,
    ) -> Option<&VerificationReport> {
        let task_name = &spec.task(property.task).name;
        let slice = hex64(slice_hash(spec, property.task));
        self.slices
            .iter()
            .any(|(name, hash)| name == task_name && *hash == slice)
            .then_some(())?;
        let pfp = hex64(fingerprint(property));
        let ofp = hex64(fingerprint(effective));
        self.reports
            .iter()
            .find(|(p, o, t, _)| *p == pfp && *o == ofp && t == task_name)
            .map(|(_, _, _, report)| report)
    }
}

fn validate(options: &Options, source: &str) -> Result<ExitCode, String> {
    let compiled = compile(options, source)?;
    let stats = compiled.spec.stats();
    println!(
        "OK: {} — {} tasks, {} relations, {} services, {} properties",
        compiled.spec.name,
        stats.tasks,
        stats.relations,
        stats.services,
        compiled.properties.len()
    );
    println!("canonical hash: {}", spec_hash_hex(&compiled.spec));
    Ok(ExitCode::SUCCESS)
}

/// Print the canonical spec hash — the `verifas serve` session-cache key
/// — in `sha256sum` style, so `verifas hash a.has b.formatted.has` diffs
/// are scriptable (formatting-equivalent specs hash identically).
fn hash(options: &Options, source: &str) -> Result<ExitCode, String> {
    let compiled = compile(options, source)?;
    println!(
        "{}  {} ({})",
        spec_hash_hex(&compiled.spec),
        options.file,
        compiled.spec.name
    );
    Ok(ExitCode::SUCCESS)
}

fn serve(options: &Options) -> Result<ExitCode, String> {
    let config = ServeConfig {
        cores: if options.cores == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            options.cores
        },
        sessions: options.sessions,
        limits: AdmissionLimits {
            max_interactive: options.max_interactive,
            max_batch: options.max_batch,
            ..AdmissionLimits::default()
        },
        reuse: options.incremental.unwrap_or(ReuseMode::Preproc),
        memory_bytes: options.memory_mb << 20,
    };
    let faults = match &options.fault_plan {
        Some(text) => Some(std::sync::Arc::new(
            FaultPlan::parse(text).map_err(|e| format!("error: --fault-plan: {e}"))?,
        )),
        None => None,
    };
    // One connection thread per admissible request (each verification
    // stream occupies its worker for the request's lifetime), one per
    // queue slot (a queued request also holds its connection), plus two
    // for control traffic (`/metrics`, `/v1/cancel`, `/v1/shutdown`).
    let workers = config
        .limits
        .limit(verifas::serve::PriorityClass::Interactive)
        + config.limits.limit(verifas::serve::PriorityClass::Batch)
        + 2 * config.limits.queue_depth
        + 2;
    let mut server = Server::start_with_faults(&options.addr, config, workers, faults.clone())
        .map_err(|e| format!("error: cannot bind {}: {e}", options.addr))?;
    println!(
        "verifas serve: listening on http://{} — {} cores, {} sessions, \
         limits {}/{} (interactive/batch, queue depth {}); \
         POST /v1/shutdown to stop",
        server.local_addr(),
        config.cores,
        config.sessions,
        config.limits.max_interactive,
        config.limits.max_batch,
        config.limits.queue_depth,
    );
    if let Some(plan) = &faults {
        println!("verifas serve: CHAOS MODE — fault plan installed: {plan}");
    }
    server.wait();
    println!("verifas serve: shut down");
    Ok(ExitCode::SUCCESS)
}

/// `verifas fuzz`: sweep a seed range through the differential oracle
/// matrix and exit nonzero on any divergence or harness error.  The
/// last line always reports how many seeds ran — the CI smoke job
/// asserts on it, so an accidentally-empty range cannot pass as green.
fn fuzz(options: &Options) -> Result<ExitCode, String> {
    let seeds = match &options.seeds {
        None => 0..256,
        Some(text) => {
            let (a, b) = text.split_once("..").ok_or_else(|| {
                format!("error: --seeds must be a range like 0..256, not {text:?}")
            })?;
            let start: u64 = a
                .parse()
                .map_err(|_| format!("error: --seeds start {a:?} is not a number"))?;
            let end: u64 = b
                .parse()
                .map_err(|_| format!("error: --seeds end {b:?} is not a number"))?;
            if start >= end {
                return Err(format!("error: --seeds range {text} is empty"));
            }
            start..end
        }
    };
    let mut config = FuzzConfig::default();
    if let Some(list) = &options.matrix {
        config.arms = list
            .split(',')
            .map(|name| {
                OracleArm::from_name(name.trim()).ok_or_else(|| {
                    let known: Vec<&str> = OracleArm::ALL.iter().map(|a| a.name()).collect();
                    format!(
                        "error: --matrix: unknown arm {name:?} (known: {})",
                        known.join(", ")
                    )
                })
            })
            .collect::<Result<Vec<OracleArm>, String>>()?;
    }
    if let Some(max_states) = options.max_states {
        config.limits.max_states = max_states;
    }
    if let Some(max_millis) = options.max_millis {
        config.limits.max_millis = max_millis;
    }
    if let Some(name) = &options.corrupt_arm {
        let arm = OracleArm::from_name(name)
            .ok_or_else(|| format!("error: --corrupt-arm: unknown arm {name:?}"))?;
        // Corrupting an arm the matrix never runs would "prove" the
        // harness works while exercising nothing — reject the combo so
        // a typo'd CI job cannot pass green.
        if !config.arms.contains(&arm) {
            return Err(format!(
                "error: --corrupt-arm {name} is not in the selected matrix"
            ));
        }
        config.corrupt = Some(arm);
        println!("fuzz: CORRUPTION MODE — arm `{name}` deliberately broken");
    }
    let arm_names: Vec<&str> = config.arms.iter().map(|a| a.name()).collect();
    println!(
        "fuzz: seeds {}..{} across arms [{}], max-states {}",
        seeds.start,
        seeds.end,
        arm_names.join(", "),
        config.limits.max_states
    );
    let outcome = run_sweep(seeds, &config, options.shrink, &mut |line| {
        println!("fuzz: {line}")
    });
    for (index, repro) in outcome.divergences.iter().enumerate() {
        let d = &repro.divergence;
        println!(
            "fuzz: divergence {index}: seed {} arm `{}`: {}",
            d.seed,
            d.arm.name(),
            d.detail
        );
        if let Some(dir) = &options.repro_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("error: cannot create {dir}: {e}"))?;
            let path = format!("{dir}/seed{}_{}.has", d.seed, d.arm.name());
            std::fs::write(&path, &repro.minimized)
                .map_err(|e| format!("error: cannot write {path}: {e}"))?;
            println!("fuzz: wrote repro to {path}");
        } else {
            println!("--- repro ---\n{}", repro.minimized);
        }
    }
    for (seed, error) in &outcome.errors {
        println!("fuzz: seed {seed}: harness error: {error}");
    }
    println!(
        "fuzz: ran {} seeds — {} divergences, {} errors",
        outcome.seeds_run,
        outcome.divergences.len(),
        outcome.errors.len()
    );
    if outcome.clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}

/// `verifas submit`: send one spec to a running daemon over its NDJSON
/// HTTP protocol and stream the response frames to stdout.  An
/// `overloaded` refusal (HTTP 429: the admission queue is full) or a
/// connection reset retries with jittered exponential backoff —
/// verification is deterministic, so a retry is always safe.
fn submit(options: &Options, source: &str) -> Result<ExitCode, String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let mut members = vec![
        ("spec".to_owned(), Json::Str(source.to_owned())),
        ("class".to_owned(), Json::Str(options.class.clone())),
    ];
    if let Some(name) = &options.prop {
        members.push((
            "properties".to_owned(),
            Json::Arr(vec![Json::Str(name.clone())]),
        ));
    }
    if let Some(ms) = options.deadline_ms {
        members.push(("deadline_ms".to_owned(), Json::Num(ms as f64)));
    }
    let body = Json::Obj(members).to_string();
    let attempts = options.retries.max(1);

    for attempt in 1..=attempts {
        let outcome = (|| -> Result<SubmitOutcome, String> {
            let mut stream = TcpStream::connect(&options.addr)
                .map_err(|e| format!("cannot connect to {}: {e}", options.addr))?;
            let request = format!(
                "POST /v1/verify HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                options.addr,
                body.len()
            );
            stream
                .write_all(request.as_bytes())
                .map_err(|e| format!("send failed: {e}"))?;
            let mut reader = BufReader::new(stream);
            let mut status = String::new();
            reader
                .read_line(&mut status)
                .map_err(|e| format!("read failed: {e}"))?;
            let code: u16 = status
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("malformed status line {status:?}"))?;
            // Skip the remaining headers; the NDJSON body follows.
            loop {
                let mut line = String::new();
                if reader
                    .read_line(&mut line)
                    .map_err(|e| format!("read failed: {e}"))?
                    == 0
                    || line.trim_end().is_empty()
                {
                    break;
                }
            }
            if code == 429 {
                return Ok(SubmitOutcome::Overloaded);
            }
            let mut saw_done = false;
            for line in reader.lines() {
                let line = line.map_err(|e| format!("stream reset: {e}"))?;
                if line.is_empty() {
                    continue;
                }
                println!("{line}");
                if let Ok(frame) = Json::parse(&line) {
                    if frame.get("frame").and_then(Json::as_str) == Some("done") {
                        saw_done = true;
                    }
                }
            }
            if code != 200 {
                return Ok(SubmitOutcome::Refused(code));
            }
            if !saw_done {
                // 200 but the stream ended without its terminal frame:
                // the connection was reset mid-stream.
                return Err("stream ended before the done frame".to_owned());
            }
            Ok(SubmitOutcome::Done)
        })();
        match outcome {
            Ok(SubmitOutcome::Done) => return Ok(ExitCode::SUCCESS),
            Ok(SubmitOutcome::Refused(code)) => {
                return Err(format!(
                    "error: {}: request refused (HTTP {code})",
                    options.addr
                ));
            }
            Ok(SubmitOutcome::Overloaded) if attempt < attempts => {
                let delay = backoff_delay(attempt);
                eprintln!(
                    "verifas submit: overloaded; retry {attempt}/{} in {}ms",
                    attempts - 1,
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Ok(SubmitOutcome::Overloaded) => {
                return Err(format!(
                    "error: {}: still overloaded after {attempts} attempts",
                    options.addr
                ));
            }
            Err(reason) if attempt < attempts => {
                let delay = backoff_delay(attempt);
                eprintln!(
                    "verifas submit: {reason}; retry {attempt}/{} in {}ms",
                    attempts - 1,
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Err(reason) => return Err(format!("error: {}: {reason}", options.addr)),
        }
    }
    unreachable!("the loop returns on its last attempt");
}

enum SubmitOutcome {
    /// The stream completed with a `done` frame.
    Done,
    /// HTTP 429: the admission queue is full — back off and retry.
    Overloaded,
    /// Any other non-200 status: a typed refusal, not retryable.
    Refused(u16),
}

/// Exponential backoff with ±50% multiplicative jitter: 100ms base,
/// doubling per attempt, capped at 5s.  Jitter decorrelates a thundering
/// herd of clients that were all refused by the same overload.
fn backoff_delay(attempt: u32) -> std::time::Duration {
    let base_ms = 100u64.saturating_mul(1 << (attempt - 1).min(10)).min(5_000);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    let mut mix = nanos ^ ((std::process::id() as u64) << 32) ^ (attempt as u64);
    mix = mix
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let factor = 50 + (mix >> 33) % 101; // 50%..150%
    std::time::Duration::from_millis(base_ms * factor / 100)
}

fn fmt(options: &Options, source: &str) -> Result<ExitCode, String> {
    // `format_source` re-anchors `//` comments against the canonical
    // layout, so commented files format (and rewrite in place) without
    // losing their documentation.
    let formatted = spec::format_source(source).map_err(|e| e.render(&options.file))?;
    if options.check {
        if formatted == source {
            Ok(ExitCode::SUCCESS)
        } else {
            eprintln!("{}: not canonically formatted", options.file);
            Ok(ExitCode::from(1))
        }
    } else if options.write {
        std::fs::write(&options.file, &formatted)
            .map_err(|e| format!("error: cannot write {}: {e}", options.file))?;
        Ok(ExitCode::SUCCESS)
    } else {
        print!("{formatted}");
        Ok(ExitCode::SUCCESS)
    }
}

fn check(options: &Options, source: &str, batch: bool) -> Result<ExitCode, String> {
    let compiled = compile(options, source)?;
    let CompiledSpec { spec, properties } = compiled;
    let selected: Vec<LtlFoProperty> = match &options.prop {
        None => properties,
        Some(name) => {
            let found: Vec<LtlFoProperty> =
                properties.into_iter().filter(|p| p.name == *name).collect();
            if found.is_empty() {
                return Err(format!(
                    "error: {}: no property named {name:?}",
                    options.file
                ));
            }
            found
        }
    };
    if selected.is_empty() {
        println!("{}: no properties to verify", spec.name);
        return Ok(ExitCode::SUCCESS);
    }
    let name = spec.name.clone();
    // Reuse mode: `--incremental` wins; otherwise `preproc` when a base
    // snapshot is given, `cold` (the historical behaviour) when not.
    let mode = options.incremental.unwrap_or(if options.base.is_some() {
        ReuseMode::Preproc
    } else {
        ReuseMode::Cold
    });
    let base = match &options.base {
        Some(path) if mode != ReuseMode::Cold => Some(BaseSnapshot::load(path)?),
        _ => None,
    };
    let engine = Engine::load_with_reuse(spec, verifier_options(options), mode)
        .map_err(|e| format!("error: {}: {e}", options.file))?;
    println!("{name}: verifying {} properties", selected.len());
    let reports: Vec<Result<VerificationReport, VerifasError>> = if batch {
        // Stream completions as the scheduler finishes them (completion
        // order); the full per-property summaries follow in input order.
        let total = selected.len();
        let mut done = 0usize;
        let mut on_result = |index: usize, result: &Result<VerificationReport, VerifasError>| {
            done += 1;
            let status = match result {
                Ok(report) => format!("{:?}", report.outcome),
                Err(_) => "error".to_owned(),
            };
            println!("  [{done}/{total}] finished #{index} ({status})");
        };
        engine
            .batch()
            .batch_options(BatchOptions {
                batch_threads: options.batch_threads.unwrap_or(options.threads),
                schedule: options.schedule.unwrap_or_default(),
            })
            .on_result(&mut on_result)
            .run(&selected)
    } else {
        let effective = effective_options(options);
        let mut reused = 0usize;
        let reports: Vec<Result<VerificationReport, VerifasError>> = selected
            .iter()
            .map(|property| {
                if let Some(report) = base
                    .as_ref()
                    .and_then(|base| base.lookup(engine.spec(), property, &effective))
                {
                    reused += 1;
                    let report = Ok(report.clone());
                    println!("  {} [reused]", summarize(&report));
                    return report;
                }
                let report = engine
                    .verification()
                    .property(property)
                    .search_threads(options.threads)
                    .run();
                println!("  {}", summarize(&report));
                report
            })
            .collect();
        if base.is_some() {
            println!(
                "incremental ({mode}): reused {reused} of {} reports",
                selected.len()
            );
        }
        reports
    };
    if batch {
        for report in &reports {
            println!("  {}", summarize(report));
        }
    }
    if let Some(path) = &options.json {
        let documents: Vec<Json> = reports
            .iter()
            .map(|r| match r {
                Ok(report) => report.to_json_value(),
                Err(e) => Json::Obj(vec![("error".to_owned(), Json::Str(e.to_string()))]),
            })
            .collect();
        let mut members = vec![
            ("spec".to_owned(), Json::Str(name.clone())),
            ("reports".to_owned(), Json::Arr(documents)),
        ];
        if !batch {
            // The edit-loop snapshot: enough identity to let a later
            // `check --base` prove which reports are still valid.  Batch
            // runs are excluded — their thread budgets are
            // scheduler-driven, so their stats are not what a later
            // `check` would reproduce.
            members.push((
                "incremental".to_owned(),
                incremental_snapshot(engine.spec(), &selected, &reports, options),
            ));
        }
        std::fs::write(path, Json::Obj(members).to_string())
            .map_err(|e| format!("error: cannot write {path}: {e}"))?;
        println!("wrote {} reports to {path}", reports.len());
    }
    if reports.iter().any(|r| r.is_err()) {
        return Err(format!(
            "error: {}: some verifications failed",
            options.file
        ));
    }
    Ok(ExitCode::SUCCESS)
}

/// The `incremental` member of a `--json` document: per-task slice
/// hashes plus (property, options) fingerprints of every definite,
/// uncancelled report — everything `BaseSnapshot::lookup` needs.
fn incremental_snapshot(
    spec: &HasSpec,
    selected: &[LtlFoProperty],
    reports: &[Result<VerificationReport, VerifasError>],
    options: &Options,
) -> Json {
    let slices: Vec<Json> = spec
        .iter_tasks()
        .map(|(id, task)| {
            Json::Obj(vec![
                ("task".to_owned(), Json::Str(task.name.clone())),
                ("hash".to_owned(), Json::Str(hex64(slice_hash(spec, id)))),
            ])
        })
        .collect();
    let effective = effective_options(options);
    let options_fp = hex64(fingerprint(&effective));
    let mut entries = Vec::new();
    for (index, (property, result)) in selected.iter().zip(reports).enumerate() {
        let Ok(report) = result else { continue };
        // A cancelled or inconclusive verdict depends on wall-clock
        // limits; reusing one would not be bit-identical to re-running.
        if report.cancelled || report.outcome == VerificationOutcome::Inconclusive {
            continue;
        }
        entries.push(Json::Obj(vec![
            ("index".to_owned(), Json::Num(index as f64)),
            ("task".to_owned(), Json::Str(report.task.clone())),
            (
                "property_fp".to_owned(),
                Json::Str(hex64(fingerprint(property))),
            ),
            ("options_fp".to_owned(), Json::Str(options_fp.clone())),
        ]));
    }
    Json::Obj(vec![
        ("schema".to_owned(), Json::Num(1.0)),
        ("spec_hash".to_owned(), Json::Str(spec_hash_hex(spec))),
        ("slices".to_owned(), Json::Arr(slices)),
        ("reports".to_owned(), Json::Arr(entries)),
    ])
}

fn summarize(report: &Result<VerificationReport, VerifasError>) -> String {
    match report {
        Err(e) => format!("error: {e}"),
        Ok(report) => {
            let outcome = match report.outcome {
                VerificationOutcome::Satisfied => "satisfied",
                VerificationOutcome::Violated => "VIOLATED",
                VerificationOutcome::Inconclusive => "inconclusive",
            };
            let mut line = format!(
                "{}: {outcome} ({} states, {} ms)",
                report.property,
                report.stats.states_created,
                report.elapsed_ms()
            );
            if let Some(witness) = &report.witness {
                let kind = if witness.finite { "finite" } else { "infinite" };
                line.push_str(&format!("\n      {kind} witness: {}", witness.description));
            }
            line
        }
    }
}
