//! # VERIFAS — a practical verifier for artifact systems
//!
//! Façade crate re-exporting the public API of the VERIFAS workspace:
//!
//! * [`model`] — the HAS\* specification language and its concrete
//!   operational semantics (`verifas-model`),
//! * [`ltl`] — LTL / LTL-FO properties and Büchi automata (`verifas-ltl`),
//! * [`core`] — the symbolic verifier itself (`verifas-core`),
//! * [`workloads`] — benchmark workflows, the synthetic generator and the
//!   cyclomatic-complexity metric (`verifas-workloads`).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! architecture and the mapping from the paper's sections to modules.

pub use verifas_core as core;
pub use verifas_ltl as ltl;
pub use verifas_model as model;
pub use verifas_workloads as workloads;
