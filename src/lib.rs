//! # VERIFAS — a practical verifier for artifact systems
//!
//! Façade crate of the VERIFAS workspace.  The public API is the
//! session-oriented [`Engine`]: load a HAS\* specification once, then
//! serve many verification requests against it.
//!
//! ```
//! use verifas::prelude::*;
//! # use verifas::model::schema::attr::data;
//! # let mut db = DatabaseSchema::new();
//! # db.add_relation("ITEMS", vec![data("name")]).unwrap();
//! # let mut root = TaskBuilder::new("Orders");
//! # let status = root.data_var("status");
//! # root.service_parts("Place", Condition::eq(Term::var(status), Term::Null),
//! #     Condition::eq(Term::var(status), Term::str("Placed")), vec![], None);
//! # let mut builder = SpecBuilder::new("docs", db, root.build());
//! # builder.global_pre(Condition::eq(Term::var(status), Term::Null));
//! # let spec = builder.build().unwrap();
//! # let property = LtlFoProperty::new("no-ghost", spec.root(), vec![],
//! #     Ltl::globally(Ltl::not(Ltl::prop(0))),
//! #     vec![PropAtom::Condition(Condition::eq(Term::var(VarId::new(0)), Term::str("Ghost")))]);
//! let engine = Engine::load(spec)?;
//!
//! // One-shot check with the engine defaults…
//! let report = engine.check(&property)?;
//! println!("{:?} — {}", report.outcome, report.to_json());
//!
//! // …or a fully configured request.
//! let mut on_progress = |event: &ProgressEvent| eprintln!("{event:?}");
//! let report = engine
//!     .verification()
//!     .property(&property)
//!     .options(VerifierOptions::default())
//!     .observer(&mut on_progress)
//!     .deadline(std::time::Duration::from_secs(10))
//!     .run()?;
//! # assert_eq!(report.outcome, VerificationOutcome::Satisfied);
//! # Ok::<(), verifas::VerifasError>(())
//! ```
//!
//! Batches of properties over one specification should use
//! [`Engine::check_all`], which builds the spec-side preprocessing (the
//! expression universe, the compiled symbolic task and the static-analysis
//! constraint graph) once per task and schedules the per-property searches
//! through the sharded batch scheduler (`verifas::core::schedule`): wide
//! while properties are queued, with cores freed by finished properties
//! reassigned to still-running searches.  `Engine::batch()` exposes the
//! batch-level knobs ([`BatchOptions`], a [`CancelToken`], a streaming
//! result callback); scheduling never changes a result.
//!
//! ## Migrating from `Verifier` (pre-0.2) to `Engine`
//!
//! The one-shot `Verifier` front-end is deprecated and will be removed
//! after one release.  The mapping is mechanical:
//!
//! | pre-0.2 | 0.2 |
//! |---|---|
//! | `Verifier::new(&spec, &prop, options)?` | `Engine::load_with_options(spec, options)?` (once per spec) |
//! | `verifier.verify()` | `engine.check(&prop)?` |
//! | `VerificationResult { outcome, counterexample, stats, .. }` | [`VerificationReport`] `{ outcome, witness, stats, .. }` |
//! | `result.counterexample.unwrap().description` | `report.witness.unwrap().description` |
//! | `result.elapsed_ms()` | `report.elapsed_ms()` |
//! | `ModelError` / panics | typed [`VerifasError`] |
//!
//! Differences worth knowing:
//!
//! * `Engine::load` takes the specification **by value** and validates it
//!   once; clone the spec if you still need it locally.
//! * The report's [`Witness`] carries a structured step list
//!   (service references plus rendered labels), not just a string, and
//!   the whole report serializes to JSON
//!   ([`VerificationReport::to_json`] / [`VerificationReport::from_json`]).
//! * Per-run knobs that used to require building a new `Verifier`
//!   (options, limits) move to the request builder
//!   ([`Engine::verification`]), alongside new ones: observers, deadlines
//!   and cancellation tokens.
//! * `VerifierOptions::without("TYPO")` used to be easy to mis-spell;
//!   prefer [`VerifierOptions::try_without`], which returns a typed error
//!   listing the valid names.
//!
//! ## Workspace layout
//!
//! * [`model`] — the HAS\* specification language and its concrete
//!   operational semantics (`verifas-model`),
//! * [`ltl`] — LTL / LTL-FO properties and Büchi automata (`verifas-ltl`),
//! * [`core`] — the symbolic verifier and the engine (`verifas-core`),
//! * [`spec`] — the textual `.has` frontend: parse a specification and
//!   its properties from a file and drive the engine from text
//!   (`verifas-spec`; see the `verifas` CLI binary and `examples/specs/`),
//! * [`serve`] — the multi-tenant verification service behind
//!   `verifas serve`: session cache, priority-class core arbitration and
//!   a dependency-free HTTP/1.1 front end (`verifas-serve`),
//! * [`workloads`] — benchmark workflows, the synthetic generator and the
//!   cyclomatic-complexity metric (`verifas-workloads`),
//! * [`fuzzgen`] — the seeded valid-spec generator and differential
//!   oracle matrix behind `verifas fuzz` (`verifas-fuzzgen`).
//!
//! See the repository `README.md` for a quickstart — the `.has` textual
//! path (`verifas check examples/specs/loan_approval.has`) is the fastest
//! way to put a new scenario through the engine without writing Rust.

pub use verifas_core as core;
pub use verifas_fuzzgen as fuzzgen;
pub use verifas_ltl as ltl;
pub use verifas_model as model;
pub use verifas_serve as serve;
pub use verifas_spec as spec;
pub use verifas_workloads as workloads;

pub use verifas_core::{
    BatchBuilder, BatchOptions, CancelToken, CycleStats, DeltaSummary, Engine, OccupancySample,
    Phase, ProgressEvent, ProgressObserver, ReuseMode, SchedulePolicy, ScheduleStats, SearchLimits,
    SearchStats, SourceSpan, SpecDelta, ThreadBudget, VerifasError, VerificationBuilder,
    VerificationOutcome, VerificationReport, VerifierOptions, Witness, WitnessStep, WorkerStats,
};
pub use verifas_spec::{CompiledSpec, SpecError};

/// Everything a typical engine user needs, in one import.
///
/// ```
/// use verifas::prelude::*;
/// ```
pub mod prelude {
    pub use verifas_core::{
        BatchBuilder, BatchOptions, CancelToken, CoverageKind, CycleStats, DeltaSummary, Engine,
        OccupancySample, Phase, ProgressEvent, ProgressObserver, ReuseMode, SchedulePolicy,
        ScheduleStats, SearchLimits, SearchStats, SourceSpan, SpecDelta, ThreadBudget,
        VerifasError, VerificationBuilder, VerificationOutcome, VerificationReport,
        VerifierOptions, Witness, WitnessStep, WorkerStats,
    };
    pub use verifas_ltl::{Ltl, LtlFoProperty, PropAtom, PropertyHandle};
    pub use verifas_model::{
        Condition, DatabaseSchema, HasSpec, ServiceRef, SpecBuilder, TaskBuilder, TaskId, Term,
        VarId,
    };
    pub use verifas_spec::{CompiledSpec, SpecError};
}
